"""Stable-storage serialisation for sites.

The protocols assume that what a site keeps on *stable storage* -- its
block data, per-block version numbers, and the durable protocol
metadata (the was-available set) -- survives a fail-stop crash.  The
in-memory :class:`~repro.device.site.Site` models this by simply not
clearing anything on ``crash()``; this module makes the assumption
testable the hard way: a site can be serialised to bytes and rebuilt
from them, so tests can destroy the Python object entirely and prove
the protocols still recover from nothing but the serialised stable
storage.

The format is a small self-describing binary layout (struct-packed,
little endian, versioned magic), independent of Python's pickle so it
is stable across runs and interpreter versions.
"""

from __future__ import annotations

import struct
from typing import Set

from ..errors import DeviceError
from ..types import SiteId
from .block import BlockStore
from .site import Site

__all__ = ["dump_site", "load_site", "dump_store", "load_store"]

_MAGIC = b"RBDS\x01"
_HEADER = struct.Struct("<IIIdBI")  # site_id, blocks, bsize, weight, wit, n_wa
_BLOCK_ENTRY = struct.Struct("<IQ")  # index, version


def dump_store(store: BlockStore) -> bytes:
    """Serialise a block store (versions + any stored data).

    Version-only entries (witness replicas track versions without
    contents) are preserved with a has-data flag of 0; quarantined
    entries (copy failed its checksum and was dropped) with a flag of
    2, so a reloaded site still refuses to serve the damaged block.
    """
    with_data = {index: data for index, data, _v in store.written_blocks()}
    quarantined = set(store.quarantined_blocks())
    entries = sorted(store.version_vector().items())
    parts = [struct.pack("<III", store.num_blocks, store.block_size,
                         len(entries))]
    for index, version in entries:
        data = with_data.get(index)
        if index in quarantined:
            flag = 2
        elif data is not None:
            flag = 1
        else:
            flag = 0
        parts.append(_BLOCK_ENTRY.pack(index, version))
        parts.append(struct.pack("<B", flag))
        if flag == 1:
            parts.append(data)
    return b"".join(parts)


def load_store(blob: bytes, offset: int = 0):
    """Rebuild a block store; returns ``(store, bytes_consumed)``."""
    num_blocks, block_size, count = struct.unpack_from("<III", blob, offset)
    offset += struct.calcsize("<III")
    store = BlockStore(num_blocks, block_size)
    for _ in range(count):
        index, version = _BLOCK_ENTRY.unpack_from(blob, offset)
        offset += _BLOCK_ENTRY.size
        (flag,) = struct.unpack_from("<B", blob, offset)
        offset += 1
        if flag == 1:
            data = blob[offset : offset + block_size]
            if len(data) != block_size:
                raise DeviceError("truncated block payload in site image")
            offset += block_size
            store.write(index, data, version)
        elif flag == 2:
            store.set_version(index, version)
            store.quarantine(index)
        elif flag == 0:
            store.set_version(index, version)
        else:
            raise DeviceError(f"unknown block flag {flag} in site image")
    return store, offset


def dump_site(site: Site) -> bytes:
    """Serialise a site's stable storage to a portable byte image."""
    was_available: Set[SiteId] = site.get_was_available()
    header = _HEADER.pack(
        site.site_id,
        site.store.num_blocks,
        site.store.block_size,
        site.weight,
        1 if site.is_witness else 0,
        len(was_available),
    )
    wa_blob = b"".join(
        struct.pack("<I", member) for member in sorted(was_available)
    )
    return _MAGIC + header + wa_blob + dump_store(site.store)


def load_site(blob: bytes) -> Site:
    """Rebuild a site from :func:`dump_site` output.

    The restored site is in the AVAILABLE state -- the caller (normally
    a recovery procedure in a test) decides what protocol state the
    freshly powered-on process should enter.
    """
    if not blob.startswith(_MAGIC):
        raise DeviceError("not a site image (bad magic)")
    offset = len(_MAGIC)
    (site_id, num_blocks, block_size, weight, witness,
     wa_count) = _HEADER.unpack_from(blob, offset)
    offset += _HEADER.size
    was_available: Set[SiteId] = set()
    for _ in range(wa_count):
        (member,) = struct.unpack_from("<I", blob, offset)
        offset += struct.calcsize("<I")
        was_available.add(member)
    store, offset = load_store(blob, offset)
    if store.num_blocks != num_blocks or store.block_size != block_size:
        raise DeviceError("site image header disagrees with its store")
    site = Site(
        site_id=site_id,
        num_blocks=num_blocks,
        block_size=block_size,
        weight=weight,
        is_witness=bool(witness),
    )
    with_data = {index: data for index, data, _v in store.written_blocks()}
    quarantined = set(store.quarantined_blocks())
    for index, version in store.version_vector().items():
        if index in quarantined:
            site.store.set_version(index, version)
            site.store.quarantine(index)
        elif index in with_data:
            site.store.write(index, with_data[index], version)
        else:
            site.store.set_version(index, version)
    site.set_was_available(was_available)
    return site
