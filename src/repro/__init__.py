"""Reproduction of *Block-Level Consistency of Replicated Files*.

Carroll, Long and Paris, Proc. 7th ICDCS, September 1987.

The paper proposes the **reliable device**: a block-structured device
that looks ordinary to the file system but is implemented by replica
server processes on several sites, and compares three block-level
consistency-control algorithms -- majority consensus voting, available
copy, and naive available copy -- on availability and network traffic.

Quick start::

    from repro import ClusterConfig, ReplicatedCluster, SchemeName

    cluster = ReplicatedCluster(ClusterConfig(
        scheme=SchemeName.NAIVE_AVAILABLE_COPY,
        num_sites=3, failure_rate=0.05, repair_rate=1.0, seed=1))
    device = cluster.device()
    device.write_block(0, b"x" * device.block_size)

    from repro.fs import FileSystem
    fs = FileSystem.format(device)          # an unmodified file system
    fs.create("/hello")                      # running on replicated blocks
    fs.write_file("/hello", b"replicated!")

    cluster.run_until(100_000.0)             # Poisson failures + repairs
    print(cluster.availability())            # compare with repro.analysis

Package map:

* :mod:`repro.core` -- the three consistency protocols (Figures 3-6);
* :mod:`repro.device` -- block stores, sites, the reliable device, the
  UNIX-model driver stub and the simulated cluster builder;
* :mod:`repro.net` -- the partition-free network with high-level
  transmission metering (Section 5's cost unit);
* :mod:`repro.sim` -- discrete-event engine, Poisson failure/repair
  processes, reproducible RNG streams, statistics;
* :mod:`repro.analysis` -- Section 4's Markov chains and closed forms,
  Section 5's traffic models, Theorem 4.1's bounds;
* :mod:`repro.fs` -- a UNIX-like file system over the abstract device;
* :mod:`repro.workload` -- synthetic read/write workloads;
* :mod:`repro.experiments` -- regeneration of Figures 9-12 and friends.
"""

from .analysis import (
    available_copy_availability,
    naive_availability,
    scheme_availability,
    traffic_model,
    voting_availability,
)
from .core import (
    AvailableCopyProtocol,
    NaiveAvailableCopyProtocol,
    QuorumSpec,
    VotingProtocol,
)
from .device import (
    BlockDevice,
    ClusterConfig,
    LocalBlockDevice,
    ReliableDevice,
    ReplicatedCluster,
    Site,
)
from .errors import ReproError
from .net import Network, TrafficMeter
from .types import AddressingMode, SchemeName

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SchemeName",
    "AddressingMode",
    "ReproError",
    "VotingProtocol",
    "AvailableCopyProtocol",
    "NaiveAvailableCopyProtocol",
    "QuorumSpec",
    "BlockDevice",
    "LocalBlockDevice",
    "ReliableDevice",
    "Site",
    "ClusterConfig",
    "ReplicatedCluster",
    "Network",
    "TrafficMeter",
    "voting_availability",
    "available_copy_availability",
    "naive_availability",
    "scheme_availability",
    "traffic_model",
]
