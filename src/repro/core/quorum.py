"""Weighted-voting quorum specifications (Section 3.1).

Majority consensus voting honours an operation only when the sites
gathered hold, together, strictly more weight than the relevant quorum
threshold (the paper's predicate is ``sum(w_i) > quorum``).  Safety
requires that

* any read quorum intersects any write quorum
  (``read_quorum + write_quorum >= total_weight``), and
* any two write quorums intersect (``2 * write_quorum >= total_weight``),

which, with strict-greater gathering, guarantees every quorum contains a
site holding the highest version number.

For replica groups with an **even** number of equal-weight copies the
paper breaks draw conditions by "adjust[ing] by a small quantity the
weight of one of the copies"; :meth:`QuorumSpec.majority` implements
exactly that, which is what makes ``A_V(2k) == A_V(2k-1)`` (equation 1.b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from ..errors import QuorumSpecError

__all__ = ["QuorumSpec", "TIE_BREAKER_WEIGHT"]

#: Extra weight granted to site 0 of an even-sized equal-weight group.
#: Exactly representable in binary floating point, so threshold
#: comparisons stay exact.
TIE_BREAKER_WEIGHT = 0.5


@dataclass(frozen=True)
class QuorumSpec:
    """Weights and thresholds for one replica group.

    ``weights[i]`` is the weight of the group's i-th site.  An operation
    gathers the weights of the sites it reached; it may proceed only if
    the gathered weight is *strictly greater* than the corresponding
    threshold.
    """

    weights: Tuple[float, ...]
    read_quorum: float
    write_quorum: float

    #: Derived, cached at construction (not dataclass fields, so they do
    #: not participate in equality/hashing).  When every weight is
    #: exactly 1.0 the strict-greater float predicates collapse to
    #: integer compares: a set of ``n`` distinct unit-weight sites
    #: gathers weight ``float(n)``, and ``n > q`` holds iff
    #: ``n >= floor(q) + 1``.  The integer needs are ``None`` for
    #: genuinely weighted specs, which must stay on the float path.
    unit_weights: bool = field(init=False, repr=False, compare=False)
    read_count_need: Optional[int] = field(
        init=False, repr=False, compare=False
    )
    write_count_need: Optional[int] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.weights:
            raise QuorumSpecError("a quorum spec needs at least one site")
        if any(w <= 0 for w in self.weights):
            raise QuorumSpecError(f"weights must be positive: {self.weights}")
        total = self.total_weight
        if self.read_quorum < 0 or self.write_quorum < 0:
            raise QuorumSpecError("quorum thresholds must be non-negative")
        if self.read_quorum + self.write_quorum < total:
            raise QuorumSpecError(
                "read_quorum + write_quorum must reach the total weight "
                f"({self.read_quorum} + {self.write_quorum} < {total})"
            )
        if 2 * self.write_quorum < total:
            raise QuorumSpecError(
                "2 * write_quorum must reach the total weight "
                f"(2 * {self.write_quorum} < {total})"
            )
        unit = all(w == 1.0 for w in self.weights)
        object.__setattr__(self, "unit_weights", unit)
        object.__setattr__(
            self,
            "read_count_need",
            math.floor(self.read_quorum) + 1 if unit else None,
        )
        object.__setattr__(
            self,
            "write_count_need",
            math.floor(self.write_quorum) + 1 if unit else None,
        )

    # -- constructors -----------------------------------------------------

    @classmethod
    def majority(cls, num_sites: int) -> "QuorumSpec":
        """Equal-weight majority quorums, tie-broken for even groups.

        Every site gets weight 1; for even ``num_sites`` site 0 receives
        :data:`TIE_BREAKER_WEIGHT` extra, resolving the draw condition in
        favour of the half that contains it.
        """
        if num_sites < 1:
            raise QuorumSpecError(f"need at least one site, got {num_sites}")
        weights = [1.0] * num_sites
        if num_sites % 2 == 0:
            weights[0] += TIE_BREAKER_WEIGHT
        total = sum(weights)
        half = total / 2.0
        return cls(
            weights=tuple(weights), read_quorum=half, write_quorum=half
        )

    @classmethod
    def weighted(
        cls,
        weights: Sequence[float],
        read_quorum: float,
        write_quorum: float,
    ) -> "QuorumSpec":
        """Arbitrary weighted quorums (Gifford-style)."""
        return cls(
            weights=tuple(float(w) for w in weights),
            read_quorum=float(read_quorum),
            write_quorum=float(write_quorum),
        )

    # -- queries -------------------------------------------------------------

    @property
    def num_sites(self) -> int:
        return len(self.weights)

    @property
    def total_weight(self) -> float:
        return sum(self.weights)

    def weight_of(self, site_index: int) -> float:
        """Weight of the group's ``site_index``-th site."""
        return self.weights[site_index]

    def gathered_weight(self, site_indices: Iterable[int]) -> float:
        """Total weight of a set of sites (by group index).

        Duplicate indices are counted once: a caller that (through a
        bug or a replayed reply) lists the same site twice must not be
        able to fake a quorum by double-counting its weight.
        """
        return sum(self.weights[i] for i in set(site_indices))

    def gathered_count(self, site_indices: Iterable[int]) -> int:
        """Distinct-site count with ``gathered_weight``'s exact contract.

        The integer companion to :meth:`gathered_weight` for unit-weight
        specs: duplicates are deduplicated the same way and an
        out-of-range index raises the same :class:`IndexError`, so for
        ``unit_weights`` specs ``float(gathered_count(s)) ==
        gathered_weight(s)`` holds for every input.
        """
        distinct = set(site_indices)
        for index in distinct:
            _ = self.weights[index]  # same IndexError as gathered_weight
        return len(distinct)

    def meets_read(self, gathered: float) -> bool:
        """Whether ``gathered`` weight forms a read quorum."""
        return gathered > self.read_quorum

    def meets_write(self, gathered: float) -> bool:
        """Whether ``gathered`` weight forms a write quorum."""
        return gathered > self.write_quorum

    def read_available(self, up_indices: Iterable[int]) -> bool:
        """Whether the up sites can form a read quorum."""
        return self.meets_read(self.gathered_weight(up_indices))

    def write_available(self, up_indices: Iterable[int]) -> bool:
        """Whether the up sites can form a write quorum."""
        return self.meets_write(self.gathered_weight(up_indices))
