"""Tunable (RF, R, W) quorum policies -- from majority voting to W=1.

The paper fixes quorum composition at majority; modern replicated
stores expose it as a *policy axis*: a replication factor RF, a read
threshold R (how many distinct replicas must answer a read) and a write
threshold W (how many distinct replicas must durably apply a write).
Two arithmetic conditions decide what the resulting system promises:

* ``R + W > RF`` -- every read set intersects every write set, so some
  read voter always holds the latest committed version;
* ``2W > RF``   -- any two write sets intersect, so version numbers
  grow monotonically along committed writes.

Policies satisfying both are **strict**: they keep the paper's
read-latest-write guarantee and merely move along the
availability/latency/traffic trade-off curve (R=1/W=RF is read-one
write-all; majority/majority sits in the middle).  Note the mirror
R=RF/W=1 is *not* strict -- it satisfies the intersection condition
but not ``2W > RF``, so two write sets can miss each other and
version numbers fork.  Policies violating either are **sloppy**
(Dynamo-style): a
read may legally return *stale* data -- an older committed value --
which the history checker then reports as a
:class:`~repro.faults.checker.StalenessWitness` rather than a
violation.  Constructing a sloppy policy requires the explicit
``allow_sloppy=True`` escape hatch.

Sloppy policies come with the two classic mitigation mechanisms, both
on by default and individually ablatable:

* **hinted handoff** (``hinted_handoff``): a write fanned out while a
  replica is down parks the missed update as a HINT on a fallback
  replica, replayed to the owner when it repairs;
* **read repair** (``read_repair``): a read that gathers R >= 2
  divergent versions pushes the newest copy to the stale voters it
  observed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QuorumPolicyError
from .quorum import QuorumSpec

__all__ = ["QuorumPolicy"]


@dataclass(frozen=True)
class QuorumPolicy:
    """One point on the (RF, R, W) quorum spectrum.

    Parameters
    ----------
    rf:
        Replication factor: the number of replicas in the group.
    r:
        Distinct replicas that must answer for a read to proceed.
    w:
        Distinct replicas that must durably apply a write for it to
        commit.
    allow_sloppy:
        Required (and only meaningful) when the policy is not strict;
        without it a sloppy (RF, R, W) combination raises
        :class:`~repro.errors.QuorumPolicyError`.
    hinted_handoff:
        Park writes aimed at down replicas as HINT messages on a
        fallback replica, replayed on repair.
    read_repair:
        Push the newest observed version to stale voters when a read
        quorum sees divergent versions.
    """

    rf: int
    r: int
    w: int
    allow_sloppy: bool = False
    hinted_handoff: bool = True
    read_repair: bool = True

    def __post_init__(self) -> None:
        if self.rf < 1:
            raise QuorumPolicyError(
                f"replication factor must be >= 1, got {self.rf}"
            )
        for name, value in (("r", self.r), ("w", self.w)):
            if not 1 <= value <= self.rf:
                raise QuorumPolicyError(
                    f"{name}={value} outside [1, rf={self.rf}]"
                )
        if not self.is_strict and not self.allow_sloppy:
            raise QuorumPolicyError(
                f"policy {self.rf}:{self.r}:{self.w} is sloppy "
                f"(needs r + w > rf and 2w > rf); pass "
                "allow_sloppy=True to accept stale reads"
            )

    # -- classification ----------------------------------------------------

    @property
    def is_strict(self) -> bool:
        """Whether the policy preserves read-latest-write."""
        return self.r + self.w > self.rf and 2 * self.w > self.rf

    @property
    def is_sloppy(self) -> bool:
        return not self.is_strict

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str, **kwargs: bool) -> "QuorumPolicy":
        """Parse the CLI form ``"RF:R:W"`` (e.g. ``"5:2:2"``).

        Keyword arguments pass through to the constructor
        (``allow_sloppy``, ``hinted_handoff``, ``read_repair``).
        """
        parts = text.split(":")
        if len(parts) != 3:
            raise QuorumPolicyError(
                f"policy must be RF:R:W, got {text!r}"
            )
        try:
            rf, r, w = (int(p) for p in parts)
        except ValueError:
            raise QuorumPolicyError(
                f"policy components must be integers, got {text!r}"
            ) from None
        return cls(rf=rf, r=r, w=w, **kwargs)

    # -- interop -----------------------------------------------------------

    def to_spec(self) -> QuorumSpec:
        """The weighted-voting spec equivalent of a *strict* policy.

        Counting R of RF equal-weight votes is weighted voting with
        unit weights and a threshold of ``R - 0.5`` (strict-greater
        gathering): the spec's safety checks ``r + w >= total`` and
        ``2w >= total`` then hold exactly when the policy is strict.
        """
        if not self.is_strict:
            raise QuorumPolicyError(
                f"sloppy policy {self.describe()} has no safe "
                "QuorumSpec equivalent"
            )
        return QuorumSpec(
            weights=(1.0,) * self.rf,
            read_quorum=self.r - 0.5,
            write_quorum=self.w - 0.5,
        )

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``"5:2:1 (sloppy)"``."""
        kind = "strict" if self.is_strict else "sloppy"
        return f"{self.rf}:{self.r}:{self.w} ({kind})"
