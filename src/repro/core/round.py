"""Pooled, pre-sized per-operation quorum round state.

Every steady-state protocol operation used to materialise a fresh
``Dict[SiteId, ...]`` of replies (and, for batched rounds, nested dicts
per block).  A :class:`QuorumRound` replaces those with two parallel,
position-indexed lists -- ``ids`` (who replied, in arrival order) and
``values`` (what they replied) -- plus a site-position *up-mask* used by
the fan-out fencing loops.  Rounds are pooled per protocol instance
(:meth:`repro.core.protocol.ReplicationProtocol._borrow_round`) and
reset by bumping a generation counter instead of reallocating, so the
hot path performs no per-operation allocation beyond what the reply
payloads themselves require.

Equivalence with the dict-based rounds is structural, not coincidental:

* replies are appended in network arrival order and the origin's own
  vote is appended last, exactly the insertion order the old reply
  dicts had, so :meth:`as_dict` reproduces them key-for-key;
* the running ``top`` maximum starts at 0, which matches
  ``max(versions.values())`` because version numbers are never
  negative and every round contains at least the origin's vote;
* the up-mask is compared against the current generation, so a stale
  mark from a previous round can never read as "replied".
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from ..types import SiteId

__all__ = ["QuorumRound"]


class QuorumRound:
    """Reusable reply table for one quorum round.

    Lifecycle: ``begin(positions)`` resets the round (O(1) -- it bumps
    ``generation`` and rewinds ``count``; the backing lists keep their
    high-water capacity), ``add(site_id, value)`` appends one reply,
    ``mark(pos)`` / ``is_marked(pos)`` maintain the site-position
    up-mask for fencing loops.  Only the first ``count`` entries of
    ``ids`` / ``values`` are meaningful; older slots hold stale garbage
    by design.
    """

    __slots__ = ("ids", "values", "count", "top", "generation", "_marks")

    def __init__(self) -> None:
        self.ids: List[SiteId] = []
        self.values: List[Any] = []
        self.count = 0
        self.top = 0
        self.generation = 0
        self._marks: List[int] = []

    def begin(self, positions: int) -> None:
        """Start a new round with ``positions`` up-mask slots.

        The reply lists are pre-extended to ``positions`` here (a round
        never holds more entries than the group has members), so
        :meth:`add` is a branch-free slot assignment.
        """
        self.generation += 1
        self.count = 0
        self.top = 0
        marks = self._marks
        if len(marks) < positions:
            grow = positions - len(marks)
            marks.extend([0] * grow)
            self.ids.extend([0] * grow)
            self.values.extend([None] * grow)

    def add(self, site_id: SiteId, value: Any) -> None:
        """Append one reply (arrival order).

        ``type(value) is int`` rather than ``isinstance``: version
        numbers are exact ints, and the running maximum is meaningless
        for the non-int reply shapes (acks, batch dicts) anyway.
        """
        i = self.count
        self.ids[i] = site_id
        self.values[i] = value
        self.count = i + 1
        if type(value) is int and value > self.top:
            self.top = value

    # -- up-mask -----------------------------------------------------------

    def mark(self, pos: int) -> None:
        """Mark the site at group position ``pos`` as heard-from."""
        self._marks[pos] = self.generation

    def is_marked(self, pos: int) -> bool:
        """Whether position ``pos`` was marked in *this* round."""
        return self._marks[pos] == self.generation

    # -- views -------------------------------------------------------------

    def id_set(self) -> Set[SiteId]:
        """The distinct repliers of this round."""
        return set(self.ids[: self.count])

    def as_dict(self) -> Dict[SiteId, Any]:
        """Reply table as a dict, in arrival (insertion) order."""
        count = self.count
        ids = self.ids
        values = self.values
        return {ids[i]: values[i] for i in range(count)}
