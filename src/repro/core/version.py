"""Per-block version numbers and version vectors.

Every copy of every block carries a version number that is incremented on
each write (Figures 3-4) and compared during recovery (Figure 5): a
recovering site sends its version vector ``v`` to its repair source, which
answers with the correct vector ``v'`` plus the blocks that changed while
the site was down.  Only modified blocks travel -- the block-level
scheme's central saving over file-level replication (Section 3).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Tuple

from ..types import BlockIndex, VersionNumber

__all__ = ["VersionVector"]


class VersionVector:
    """A mapping from block index to version number.

    Unwritten blocks have version 0 and are not stored explicitly, so the
    vector stays compact for large, sparsely written devices.  Instances
    are mutable (sites update them in place during writes and recovery)
    but support value-style comparison.
    """

    __slots__ = ("_versions",)

    def __init__(
        self, versions: Mapping[BlockIndex, VersionNumber] = ()
    ) -> None:
        self._versions: Dict[BlockIndex, VersionNumber] = {
            k: v for k, v in dict(versions).items() if v != 0
        }

    # -- element access -------------------------------------------------------

    def get(self, block: BlockIndex) -> VersionNumber:
        """Version of ``block`` (0 if never written)."""
        return self._versions.get(block, 0)

    def getter(self) -> Callable[[BlockIndex, VersionNumber], VersionNumber]:
        """The underlying dict's bound ``.get`` -- call with default 0.

        A flattened accessor for hot version probes (one dict lookup
        instead of two call frames).  Valid for the vector's lifetime:
        the dict is mutated in place by :meth:`set`/:meth:`bump` but
        never rebound.
        """
        return self._versions.get

    def set(self, block: BlockIndex, version: VersionNumber) -> None:
        """Set the version of ``block``."""
        if version < 0:
            raise ValueError(f"negative version {version}")
        if version == 0:
            self._versions.pop(block, None)
        else:
            self._versions[block] = version

    def bump(self, block: BlockIndex, to_at_least: VersionNumber) -> None:
        """Raise ``block``'s version to at least ``to_at_least``."""
        if to_at_least > self.get(block):
            self.set(block, to_at_least)

    # -- vector operations -------------------------------------------------

    def stale_relative_to(self, other: "VersionVector") -> List[BlockIndex]:
        """Blocks where ``self`` is older than ``other``, sorted.

        These are exactly the blocks a recovering site must fetch from its
        repair source.
        """
        return sorted(
            block
            for block, version in other.items()
            if self.get(block) < version
        )

    def newer_than(self, other: "VersionVector") -> List[BlockIndex]:
        """Blocks where ``self`` is newer than ``other``, sorted."""
        return other.stale_relative_to(self)

    def dominates(self, other: "VersionVector") -> bool:
        """True when no block of ``other`` is newer than ours."""
        return not self.stale_relative_to(other)

    def merge_max(self, other: "VersionVector") -> None:
        """Raise each entry to the pairwise maximum (in place)."""
        for block, version in other.items():
            self.bump(block, version)

    def total(self) -> int:
        """Sum of all version numbers.

        A convenient scalar proxy for "how much has this copy seen": under
        the single-writer histories exercised here, the copy with the
        maximal vector also has the maximal total, which is how recovery
        code picks the most current comatose copy (Figures 5-6 compare
        ``version(t) >= version(u)`` as scalars).
        """
        return sum(self._versions.values())

    def copy(self) -> "VersionVector":
        """An independent copy of this vector."""
        return VersionVector(self._versions)

    # -- iteration / comparison ----------------------------------------------

    def items(self) -> Iterable[Tuple[BlockIndex, VersionNumber]]:
        """(block, version) pairs for explicitly versioned blocks."""
        return self._versions.items()

    def blocks(self) -> Iterator[BlockIndex]:
        """Block indices with non-zero versions."""
        return iter(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._versions == other._versions

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("VersionVector is mutable and unhashable")

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{k}:{v}" for k, v in sorted(self._versions.items())
        )
        return f"VersionVector({{{entries}}})"
