"""Available-copy consistency control (Section 3.2, Figure 5).

The rule for writing is *write to all available copies*; since every
available copy receives every write, data may be read from any available
copy -- locally, with **zero network traffic**.  The price is recovery
bookkeeping: after a *total* failure the group must not come back up on a
stale copy, so each site durably stores a *was-available set* ``W_s``
(Definition 3.1) whose closure ``C*(W_s)`` (Definition 3.2) bounds the
sites that could have failed last.  A site repairing while some copy is
still available simply refreshes its stale blocks from it (one version
vector exchange); a site repairing into a total failure stays *comatose*
until every member of the closure has recovered, at which point the
highest-versioned member is provably current and everyone repairs from
it.

Transmission accounting (Section 5, multicast): writes cost ``U_A``
(broadcast plus acknowledgements), reads cost zero, recovery costs
``U_A + 2`` (probe, replies, version-vector request and reply).  With
unique addressing: writes ``n + U_A - 2``, recovery ``n + U_A``.

``track_failures`` selects how aggressively was-available sets follow
failures.  ``True`` (default) assumes surviving sites learn of a failure
when they next communicate and refresh ``W`` accordingly -- this is the
behaviour Section 4.2's Markov model (Figure 7) analyses, where the group
returns to service as soon as the *last* site to fail recovers.  ``False``
updates ``W`` only on writes and repairs, the cheapest variant the paper
sketches ("the availability information [is] brought up to date when a
data block is modified or when a repair operation occurs"); it is safe
but can degrade toward naive behaviour when writes are rare -- the
ablation experiment quantifies exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..device.site import Site
    from ..membership.view import View
from ..errors import (
    CorruptBlockError,
    NoAvailableCopyError,
    QuorumNotReachedError,
    SiteDownError,
    StaleEpochError,
)
from ..net.message import MessageCategory
from ..net.network import NO_REPLY, Network
from ..obs.trace import _NULL_SPAN
from ..types import BlockIndex, SchemeName, SiteId, SiteState
from .policy import QuorumPolicy
from .protocol import ReplicationProtocol
from .version import VersionVector
from .was_available import closure_ready

__all__ = ["AvailableCopyProtocol", "AvailableCopyBase"]


class AvailableCopyBase(ReplicationProtocol):
    """Machinery shared by the tracked and the naive available-copy schemes.

    Subclasses provide the write fan-out and the total-failure recovery
    rule; reads, ordinary repair and the version-vector exchange are
    identical in both schemes.

    An (RF, R, W) policy degenerates here to pure *availability
    thresholds*: the scheme already writes to all available copies (so
    consistency is independent of W) and reads locally (so R buys no
    freshness), but a policy-configured group refuses to serve a read
    with fewer than R available copies or a write with fewer than W --
    making the three protocols comparable along the same policy axis.
    Hinted handoff and read repair do not apply (full repair on rejoin
    subsumes both).
    """

    def __init__(
        self,
        sites: Sequence['Site'],
        network: Network,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(sites, network)
        if policy is not None and policy.rf != len(sites):
            raise ValueError(
                f"policy replication factor {policy.rf} does not "
                f"match the group size {len(sites)}"
            )
        self.policy = policy
        #: Number of total-failure episodes resolved (observability).
        self.total_failure_recoveries = 0

    def _policy_gate(self, need: int) -> None:
        """Refuse service when fewer than ``need`` copies are available."""
        avail = len(self.available_sites())
        if avail < need:
            raise QuorumNotReachedError(float(avail), float(need))

    # -- read: Section 3.2, "data can then be read from any available copy" --

    def read(self, origin: SiteId, block: BlockIndex) -> bytes:
        """Read locally; available copies are always current.

        Generates no network traffic on the fault-free path (the paper's
        headline advantage of the available-copy schemes for
        read-dominated workloads).  A corrupt local copy is quarantined
        and self-healed from any other copy holding at least the local
        version -- one repair-request/block-transfer exchange.
        """
        site = self.require_origin(origin)
        if site.state is not SiteState.AVAILABLE:
            raise SiteDownError(
                origin, "comatose sites cannot serve reads"
            )
        if self.policy is not None:
            self._policy_gate(self.policy.r)
        span = (
            self._span("read", origin=origin, block=block)
            if self._network._tracer.enabled else _NULL_SPAN
        )
        with self._record_read, span:
            try:
                return site.read_block(block)
            except CorruptBlockError:
                self.note_corruption(origin, block)
                needed = site.block_version(block)
                site.store.quarantine(block)
                if not self._fetch_for(site, block, needed):
                    raise CorruptBlockError(
                        block, origin,
                        detail="no intact copy reachable to heal from",
                    ) from None
                self.note_heal(origin, block)
                return site.read_block(block)

    def read_batch(
        self, origin: SiteId, blocks: Sequence[BlockIndex]
    ) -> Dict[BlockIndex, bytes]:
        """Read a whole batch locally in one metered operation.

        Available copies are always current, so a batch read stays a
        purely local affair (zero fault-free network traffic, like
        :meth:`read`); each corrupt block heals individually through the
        ordinary repair-request path.
        """
        ordered = list(dict.fromkeys(blocks))
        if not ordered:
            return {}
        site = self.require_origin(origin)
        if site.state is not SiteState.AVAILABLE:
            raise SiteDownError(
                origin, "comatose sites cannot serve reads"
            )
        if self.policy is not None:
            self._policy_gate(self.policy.r)
        span = (
            self._span("read_batch", origin=origin, batch=len(ordered))
            if self._network._tracer.enabled else _NULL_SPAN
        )
        with self._record_batch_read, span:
            out: Dict[BlockIndex, bytes] = {}
            for block in ordered:
                try:
                    out[block] = site.read_block(block)
                except CorruptBlockError:
                    self.note_corruption(origin, block)
                    needed = site.block_version(block)
                    site.store.quarantine(block)
                    if not self._fetch_for(site, block, needed):
                        raise CorruptBlockError(
                            block, origin,
                            detail="no intact copy reachable to heal from",
                        ) from None
                    self.note_heal(origin, block)
                    out[block] = site.read_block(block)
            return out

    def _fetch_for(
        self,
        target: 'Site',
        block: BlockIndex,
        needed: int,
        exclude: Set[SiteId] = frozenset(),
    ) -> bool:
        """Fetch a fresh copy of ``block`` (version >= ``needed``) for
        ``target`` from some peer; returns whether one was obtained.

        Peers whose own copy turns out corrupt are quarantined and
        skipped, so one sweep detects every bad copy it touches.
        """

        def serve(node, payload):
            index, wanted = payload
            if node.block_version(index) < wanted:
                return NO_REPLY
            try:
                data = node.read_block(index)
            except CorruptBlockError:
                self.note_corruption(node.site_id, index)
                node.store.quarantine(index)
                return NO_REPLY
            return data, node.block_version(index)

        skip = set(exclude) | {target.site_id}
        candidates = [
            s.site_id for s in self.available_sites()
            if s.site_id not in skip
        ] + [
            s.site_id for s in self.comatose_sites()
            if s.site_id not in skip
        ]
        for peer in candidates:
            ok, reply = self.network.unicast_query(
                src=target.site_id,
                dst=peer,
                request=MessageCategory.BLOCK_REPAIR_REQUEST,
                reply=MessageCategory.BLOCK_TRANSFER,
                handler=serve,
                payload=(block, needed),
            )
            if ok:
                data, version = reply
                target.write_block(block, data, version)
                return True
        return False

    # -- availability predicate (Section 4's event) ---------------------------

    def is_available(self) -> bool:
        """At least one copy is in the AVAILABLE state."""
        return any(s.is_available for s in self.sites)

    # -- write helpers ----------------------------------------------------------

    def _require_available_origin(self, origin: SiteId) -> "Site":
        site = self.require_origin(origin)
        if site.state is not SiteState.AVAILABLE:
            if self.available_sites():
                raise SiteDownError(
                    origin, "origin is comatose; write elsewhere"
                )
            raise NoAvailableCopyError(
                "no available copy exists (recovering from total failure)"
            )
        return site

    # -- repair machinery -------------------------------------------------------

    def _probe(self, site: 'Site') -> Dict[SiteId, Tuple[str, Set[SiteId], int]]:
        """Broadcast a recovery probe; reachable sites report their state.

        Each reply carries the responder's protocol state, its durable
        was-available set and its scalar version total -- everything the
        recovering site needs to run Figure 5's (or Figure 6's) select.
        """

        def answer(node, _payload):
            return (node.state.value, node.get_was_available(),
                    node.version_total())

        return self.network.broadcast_query(
            site.site_id,
            request=MessageCategory.RECOVERY_PROBE,
            reply=MessageCategory.RECOVERY_PROBE_REPLY,
            handler=answer,
            payload=None,
        )

    def _repair_from(self, source: 'Site', target: 'Site') -> None:
        """Version-vector exchange of Figure 5: refresh stale blocks.

        ``target`` sends its version vector; ``source`` replies with the
        correct vector plus copies of every block modified while
        ``target`` was down.  Two transmissions, as Section 5.1 counts.

        Stale blocks whose copy at the source is corrupt are omitted
        from the reply (the source quarantines them); the target fetches
        those from another peer, or -- when no intact copy exists
        anywhere -- quarantines its own stale copy at the correct
        version rather than silently serving outdated data.
        """
        before = target.version_vector()

        def serve(node, payload):
            vector: VersionVector = payload
            stale = vector.stale_relative_to(node.version_vector())
            blocks = {}
            for b in stale:
                try:
                    blocks[b] = (node.read_block(b), node.block_version(b))
                except CorruptBlockError:
                    self.note_corruption(node.site_id, b)
                    node.store.quarantine(b)
            return node.version_vector(), blocks

        delivered, reply = False, None
        for _ in range(3):  # rides out transient delivery loss
            delivered, reply = self.network.unicast_query(
                src=target.site_id,
                dst=source.site_id,
                request=MessageCategory.VERSION_VECTOR_REQUEST,
                reply=MessageCategory.VERSION_VECTOR_REPLY,
                handler=serve,
                payload=before,
            )
            if delivered:
                break
        if not delivered:
            raise SiteDownError(source.site_id, "repair source vanished")
        vector, blocks = reply
        for block, (data, version) in sorted(blocks.items()):
            target.write_block(block, data, version)
        missing = [
            b for b in before.stale_relative_to(vector) if b not in blocks
        ]
        for block in missing:
            needed = vector.get(block)
            if not self._fetch_for(target, block, needed,
                                   exclude={source.site_id}):
                target.store.quarantine(block, needed)
        target.set_state(SiteState.AVAILABLE)

    # -- dynamic membership ---------------------------------------------------

    def finish_join(self, source: 'Site', joiner: 'Site') -> None:
        """Flip a caught-up joiner AVAILABLE.

        The membership manager calls this once the joiner's state
        transfer has drained; a final version-vector exchange from
        ``source`` closes any window between the last transfer chunk and
        now, after which the joiner is an available copy like any other.
        """
        self._repair_from(source, joiner)
        self.joining.discard(joiner.site_id)

    # -- invariant (exercised by tests) ------------------------------------------

    def check_invariants(self) -> None:
        """Assert the structural invariants of available-copy schemes.

        * Comatose sites exist only while no copy is available (they are
          created exclusively by recovery from a total failure) -- with
          one exception: a *joining* site is deliberately held COMATOSE
          while its state transfer runs, alongside available members.
        * All available copies hold identical version vectors (every
          available copy received every write).
        """
        available = self.available_sites()
        comatose = [
            s for s in self.comatose_sites()
            if s.site_id not in self.joining
        ]
        if comatose and available:
            raise AssertionError(
                f"comatose sites {[s.site_id for s in comatose]} coexist "
                f"with available sites {[s.site_id for s in available]}"
            )
        if available:
            reference = available[0].version_vector()
            for site in available[1:]:
                if site.version_vector() != reference:
                    raise AssertionError(
                        f"available copies diverge: site "
                        f"{available[0].site_id} has {reference}, site "
                        f"{site.site_id} has {site.version_vector()}"
                    )


class AvailableCopyProtocol(AvailableCopyBase):
    """The available-copy scheme with was-available bookkeeping (Figure 5)."""

    def __init__(
        self,
        sites: Sequence['Site'],
        network: Network,
        track_failures: bool = True,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(sites, network, policy=policy)
        self._track_failures = track_failures
        everyone = set(self.site_ids)
        for site in self.sites:
            site.set_was_available(everyone)

    @property
    def scheme(self) -> SchemeName:
        return SchemeName.AVAILABLE_COPY

    @property
    def track_failures(self) -> bool:
        return self._track_failures

    # -- write: "write to all available copies" ---------------------------------

    def write(self, origin: SiteId, block: BlockIndex, data: bytes) -> int:
        site = self._require_available_origin(origin)
        if self.policy is not None:
            self._policy_gate(self.policy.w)
        network = self._network
        span = (
            self._span("write", origin=origin, block=block)
            if network._tracer.enabled else _NULL_SPAN
        )
        with self._record_write, span:
            recipients = {s.site_id for s in self.available_sites()}
            new_version = site.block_version(block) + 1
            epoch_tag = self.current_epoch()
            blob = bytes(data)
            fenced: List[SiteId] = []

            def apply(node, payload):
                index, body, version, was_available = payload
                if node.state is not SiteState.AVAILABLE:
                    return NO_REPLY
                if self._epoch_rejects(node, epoch_tag):
                    # The member has adopted a newer epoch than this
                    # fan-out carries; applying would let a write commit
                    # against a membership that no longer holds.
                    fenced.append(node.site_id)
                    return NO_REPLY
                node.write_block(index, body, version)
                node.set_was_available(was_available)
                return True

            # The write is broadcast; the recipient set rides along (the
            # paper's atomic-broadcast assumption, relaxable by delaying
            # the information one write without extra messages).  Acks
            # gather into a pooled round (WRITE_ACK is fixed-size, so
            # untraced runs meter the replies as one batch).
            rnd = self._borrow_round()
            try:
                network.broadcast_round(
                    origin,
                    MessageCategory.WRITE_UPDATE,
                    MessageCategory.WRITE_ACK,
                    apply,
                    (block, blob, new_version, recipients),
                    rnd,
                )
                if site.state is not SiteState.AVAILABLE:
                    # Crashed mid-fan-out (fault injection): a torn group
                    # write -- some available copies applied it, the local
                    # one never will.  Repair supersedes the survivors'
                    # higher-versioned copies when the origin rejoins.
                    if self.recorder is not None:
                        self.recorder.torn_write(block, blob, new_version)
                    raise SiteDownError(
                        origin, "failed during the write fan-out"
                    )
                # "Write to all available copies" demands every recipient
                # actually take the update; a still-available site whose
                # acknowledgement is missing (transient message loss) can
                # no longer be assumed current and is fenced out of the
                # group.  Partitioned-away sites are exempt: nothing can
                # be proven about them, which is exactly why
                # available-copy schemes are unsafe under partitions
                # (Section 6).  Ackers are marked in the round's up-mask
                # so the sweep tests membership without building a set.
                pos_of = self._pos_of
                for acker in rnd.ids[:rnd.count]:
                    rnd.mark(pos_of[acker])
                for silent in sorted(recipients):
                    if silent == origin or rnd.is_marked(pos_of[silent]):
                        continue
                    if silent in fenced:
                        continue
                    if (self.site(silent).state is SiteState.AVAILABLE
                            and network.can_communicate(origin, silent)):
                        self.fence(silent)
            finally:
                self._release_round(rnd)
            if fenced:
                # An epoch-fenced recipient is healthy but refused the
                # stale-tagged update; "write to all available copies"
                # did not hold, so the write is torn and must be retried
                # under the new epoch.
                self.epoch_fences += len(fenced)
                if self.recorder is not None:
                    self.recorder.torn_write(block, blob, new_version)
                raise StaleEpochError(
                    f"write of block {block} tagged epoch {epoch_tag} "
                    f"was fenced by {sorted(set(fenced))}"
                )
            site.write_block(block, blob, new_version)
            site.set_was_available(recipients)
            return new_version

    def write_batch(
        self, origin: SiteId, updates: Mapping[BlockIndex, bytes]
    ) -> Dict[BlockIndex, int]:
        """Write a whole batch to all available copies in ONE fan-out.

        One BATCH_WRITE_UPDATE broadcast carries every block; each
        recipient applies all of them and sends one acknowledgement.
        Version assignment, fencing of silent members and torn-write
        semantics are per block, exactly as in :meth:`write`; a
        mid-fan-out origin crash tears every block of the batch
        individually.
        """
        blocks = sorted(updates)
        if not blocks:
            return {}
        site = self._require_available_origin(origin)
        if self.policy is not None:
            self._policy_gate(self.policy.w)
        network = self._network
        span = (
            self._span("write_batch", origin=origin, batch=len(blocks))
            if network._tracer.enabled else _NULL_SPAN
        )
        with self._record_batch_write, span:
            recipients = {s.site_id for s in self.available_sites()}
            new_versions = {b: site.block_version(b) + 1 for b in blocks}
            batch = {
                b: (bytes(updates[b]), new_versions[b]) for b in blocks
            }
            epoch_tag = self.current_epoch()
            fenced: List[SiteId] = []

            def apply(node, payload):
                shipped, was_available = payload
                if node.state is not SiteState.AVAILABLE:
                    return NO_REPLY
                if self._epoch_rejects(node, epoch_tag):
                    fenced.append(node.site_id)
                    return NO_REPLY
                for index in sorted(shipped):
                    blob, version = shipped[index]
                    node.write_block(index, blob, version)
                node.set_was_available(was_available)
                return True

            rnd = self._borrow_round()
            try:
                network.broadcast_round(
                    origin,
                    MessageCategory.BATCH_WRITE_UPDATE,
                    MessageCategory.BATCH_WRITE_ACK,
                    apply,
                    (batch, recipients),
                    rnd,
                )
                if site.state is not SiteState.AVAILABLE:
                    # Crashed mid-fan-out: every block of the batch is
                    # torn the same way a single-block write would be.
                    if self.recorder is not None:
                        for b in blocks:
                            self.recorder.torn_write(
                                b, batch[b][0], new_versions[b]
                            )
                    raise SiteDownError(
                        origin, "failed during the batched write fan-out"
                    )
                pos_of = self._pos_of
                for acker in rnd.ids[:rnd.count]:
                    rnd.mark(pos_of[acker])
                for silent in sorted(recipients):
                    if silent == origin or rnd.is_marked(pos_of[silent]):
                        continue
                    if silent in fenced:
                        continue
                    if (self.site(silent).state is SiteState.AVAILABLE
                            and network.can_communicate(origin, silent)):
                        self.fence(silent)
            finally:
                self._release_round(rnd)
            if fenced:
                self.epoch_fences += len(fenced)
                if self.recorder is not None:
                    for b in blocks:
                        self.recorder.torn_write(
                            b, batch[b][0], new_versions[b]
                        )
                raise StaleEpochError(
                    f"batched write of {len(blocks)} blocks tagged "
                    f"epoch {epoch_tag} was fenced by "
                    f"{sorted(set(fenced))}"
                )
            for b in blocks:
                site.write_block(b, batch[b][0], new_versions[b])
            site.set_was_available(recipients)
            return new_versions

    # -- dynamic membership ---------------------------------------------------

    def finish_join(self, source: 'Site', joiner: 'Site') -> None:
        super().finish_join(source, joiner)
        if self._track_failures:
            self._refresh_was_available()
        else:
            self._exchange_was_available(source, joiner)

    def commit_view_change(self, view: 'View') -> None:
        """Close the window and re-anchor was-available bookkeeping.

        Expelled members must vanish from every ``W`` set (or a later
        total-failure recovery would wait for a site that can never
        rejoin) and the joiner must appear in them (or the closure could
        miss the site that actually failed last).
        """
        super().commit_view_change(view)
        if self._track_failures:
            self._refresh_was_available()
        else:
            members = set(self._order)
            live = {s.site_id for s in self.available_sites()}
            for site in self.available_sites():
                site.set_was_available(
                    (site.get_was_available() & members) | live
                )

    # -- failure handling ---------------------------------------------------------

    def on_site_failed(self, site_id: SiteId) -> None:
        self.site(site_id).crash()
        if self._track_failures:
            self._refresh_was_available()

    def _refresh_was_available(self) -> None:
        """Record the current available set at every available site.

        Models survivors learning of a failure at their next exchange
        (Section 3.2's relaxation of atomic broadcast); costs no
        additional high-level transmissions in the paper's accounting.
        """
        live = {s.site_id for s in self.available_sites()}
        for site in self.available_sites():
            site.set_was_available(live)

    # -- repair: Figure 5 ----------------------------------------------------------

    def on_site_repaired(self, site_id: SiteId) -> None:
        site = self.site(site_id)
        start = self.meter.total
        self._sync_epoch(site)
        site.set_state(SiteState.COMATOSE)
        replies = self._probe(site)
        available = [
            (s, total)
            for s, (state, _w, total) in replies.items()
            if state == SiteState.AVAILABLE.value
        ]
        if available:
            # Second select arm: some copy is available -- repair from it.
            best = max(available, key=lambda item: (item[1], -item[0]))[0]
            self._repair_from(self.site(best), site)
            if self._track_failures:
                self._refresh_was_available()
            else:
                self._exchange_was_available(self.site(best), site)
        else:
            # Total failure in progress: stay comatose until the closure
            # of some stored was-available set has fully recovered.
            self._resolve_total_failure()
        self._record_recovery(start)

    def _exchange_was_available(self, source: 'Site', target: 'Site') -> None:
        """Figure 5's tail: ``W_s <- W_t + {s}``, mirrored at ``t``.

        The source can update its own set locally -- it knows it just
        served the repair -- so no extra transmission is needed.
        """
        merged = source.get_was_available() | {target.site_id}
        target.set_was_available(merged)
        source.set_was_available(merged)

    def _resolve_total_failure(self) -> None:
        """First select arm of Figure 5.

        If some comatose site's closure has fully recovered, its
        highest-versioned member is provably current: mark that member
        available and let every other comatose site repair from it.

        Was-available sets are intersected with the *current* membership
        before the closure runs: a site that was down across a view
        change may durably remember an expelled member, and waiting for
        an expelled site to recover would deadlock the group forever.
        Dropping it is safe -- a view change only commits after a write
        reaches the surviving intersection (so the survivors' refreshed
        ``W`` sets, which the closure chases transitively, name every
        site that could have failed last).
        """
        members_now = set(self._order)
        recovered = {s.site_id for s in self.operational_sites()}
        known = {
            s.site_id: s.get_was_available() & members_now
            for s in self.operational_sites()
        }
        anchor: Optional['Site'] = None
        for site in self.comatose_sites():
            members = closure_ready(
                site.get_was_available() & members_now, known, recovered
            )
            if not members:
                continue
            anchor = max(
                (self.site(m) for m in members),
                key=lambda s: (s.version_total(), -s.site_id),
            )
            break
        if anchor is None:
            return
        anchor.set_state(SiteState.AVAILABLE)
        self.total_failure_recoveries += 1
        for site in self.comatose_sites():
            self._repair_from(anchor, site)
        if self._track_failures:
            self._refresh_was_available()
        else:
            live = {s.site_id for s in self.available_sites()}
            for site in self.available_sites():
                site.set_was_available(site.get_was_available() | live)
