"""The paper's contribution: block-level consistency-control algorithms.

Three protocols over a replica group of block-holding sites:

* :class:`~repro.core.voting.VotingProtocol` -- weighted majority
  consensus voting with lazy per-block recovery (Section 3.1);
* :class:`~repro.core.available_copy.AvailableCopyProtocol` -- available
  copy with was-available sets and closure-based recovery (Section 3.2);
* :class:`~repro.core.naive.NaiveAvailableCopyProtocol` -- available copy
  with no failure bookkeeping (Section 3.3).

Supporting vocabulary: :class:`~repro.core.quorum.QuorumSpec` (weighted
quorums with the paper's even-group tie-breaking),
:class:`~repro.core.version.VersionVector` (per-block version numbers)
and :mod:`~repro.core.was_available` (Definitions 3.1-3.2).
"""

from .available_copy import AvailableCopyBase, AvailableCopyProtocol
from .naive import NaiveAvailableCopyProtocol
from .policy import QuorumPolicy
from .protocol import ReplicationProtocol
from .quorum import QuorumSpec, TIE_BREAKER_WEIGHT
from .version import VersionVector
from .voting import VotingProtocol
from .was_available import closure, closure_ready

__all__ = [
    "ReplicationProtocol",
    "VotingProtocol",
    "AvailableCopyProtocol",
    "AvailableCopyBase",
    "NaiveAvailableCopyProtocol",
    "QuorumPolicy",
    "QuorumSpec",
    "TIE_BREAKER_WEIGHT",
    "VersionVector",
    "closure",
    "closure_ready",
]
