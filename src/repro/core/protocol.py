"""Framework shared by the three consistency-control protocols.

A :class:`ReplicationProtocol` manages one replica group: a fixed set of
:class:`~repro.device.site.Site` objects joined by a
:class:`~repro.net.Network`.  It exposes the operations the reliable
device needs (`read`, `write`), the failure/repair entry points driven by
the simulator, and the availability predicate the analysis section
studies (is the replicated block currently accessible?).

Concrete subclasses implement the paper's Figures 3-6:

* :class:`~repro.core.voting.VotingProtocol` (Figures 3-4),
* :class:`~repro.core.available_copy.AvailableCopyProtocol` (Figure 5),
* :class:`~repro.core.naive.NaiveAvailableCopyProtocol` (Figure 6).

Traffic attribution: reads and writes are bracketed with
``meter.record("read"/"write")``; recovery traffic (including version
vector exchanges deferred until after a total failure resolves) is
attributed manually so that *total* recovery traffic divided by the
number of repair events reproduces the paper's per-recovery costs.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..device.site import Site
from ..errors import SiteDownError
from ..net.network import Network
from ..net.traffic import TrafficMeter
from ..sim.failures import FailureRepairProcess
from ..types import BlockIndex, SchemeName, SiteId, SiteState

__all__ = ["ReplicationProtocol"]


class ReplicationProtocol(abc.ABC):
    """Base class for block-level consistency-control protocols."""

    def __init__(self, sites: Sequence['Site'], network: Network) -> None:
        if not sites:
            raise ValueError("a replica group needs at least one site")
        ids = [site.site_id for site in sites]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate site ids in replica group: {ids}")
        self._sites: Dict[SiteId, 'Site'] = {s.site_id: s for s in sites}
        self._order: List[SiteId] = ids
        self._network = network
        for site in sites:
            network.attach(site)
        geometries = {(s.store.num_blocks, s.store.block_size) for s in sites}
        if len(geometries) != 1:
            raise ValueError(
                f"replica sites disagree on device geometry: {geometries}"
            )
        #: Optional fault-history recorder (see :mod:`repro.faults`); the
        #: protocols notify it of detections, heals and fencings.  None on
        #: the fault-free path.
        self.recorder = None
        #: Corrupt copies detected at read/repair/scrub time.
        self.corruptions_detected = 0
        #: Corrupt copies overwritten with fresh data from a peer.
        self.blocks_healed = 0
        #: Sites evicted from the group after failing to take a write
        #: fan-out (available-copy schemes enforcing fail-stop).
        self.sites_fenced = 0

    # -- structure ----------------------------------------------------------

    @property
    def sites(self) -> List['Site']:
        """The group's sites, in declaration order."""
        return [self._sites[i] for i in self._order]

    @property
    def site_ids(self) -> List[SiteId]:
        return list(self._order)

    @property
    def num_sites(self) -> int:
        return len(self._order)

    @property
    def network(self) -> Network:
        return self._network

    @property
    def meter(self) -> TrafficMeter:
        return self._network.meter

    @property
    def tracer(self):
        """The span tracer (the network's; a no-op unless wired)."""
        return self._network.tracer

    def _span(self, op: str, **attrs):
        """Open a ``protocol.<op>`` span tagged with this scheme.

        The concrete protocols bracket each read/write/batch operation
        with it; outcomes (quorum misses, down origins, corruption) are
        stamped automatically from the raised exception.
        """
        return self.tracer.span(
            f"protocol.{op}",
            layer="protocol",
            scheme=self.scheme.value,
            **attrs,
        )

    def site(self, site_id: SiteId) -> "Site":
        """Look up a member site by id."""
        try:
            return self._sites[site_id]
        except KeyError:
            raise SiteDownError(site_id, "not a member of this group") from None

    @property
    def num_blocks(self) -> int:
        return self.sites[0].store.num_blocks

    @property
    def block_size(self) -> int:
        return self.sites[0].store.block_size

    # -- site-state helpers ---------------------------------------------------

    def available_sites(self) -> List['Site']:
        """Sites in the AVAILABLE state, in declaration order."""
        return [s for s in self.sites if s.state is SiteState.AVAILABLE]

    def comatose_sites(self) -> List['Site']:
        """Sites in the COMATOSE state, in declaration order."""
        return [s for s in self.sites if s.state is SiteState.COMATOSE]

    def operational_sites(self) -> List['Site']:
        """Sites whose process is running (not failed)."""
        return [s for s in self.sites if s.state is not SiteState.FAILED]

    def require_origin(self, origin: SiteId) -> "Site":
        """The site an operation is initiated at; must be operational."""
        site = self.site(origin)
        if site.state is SiteState.FAILED:
            raise SiteDownError(origin, "cannot initiate operations")
        return site

    # -- the protocol interface ------------------------------------------------

    @property
    @abc.abstractmethod
    def scheme(self) -> SchemeName:
        """Which of the paper's three schemes this object implements."""

    @abc.abstractmethod
    def read(self, origin: SiteId, block: BlockIndex) -> bytes:
        """Read ``block`` on behalf of the file system at ``origin``.

        Raises :class:`~repro.errors.DeviceUnavailableError` when the
        consistency protocol cannot currently serve reads.
        """

    @abc.abstractmethod
    def write(self, origin: SiteId, block: BlockIndex, data: bytes) -> int:
        """Write ``block`` on behalf of the file system at ``origin``.

        Returns the version number assigned to the write (the fault
        checker correlates histories with it).  Raises
        :class:`~repro.errors.DeviceUnavailableError` when the
        consistency protocol cannot currently serve writes.
        """

    # -- batched operations (the vectorized I/O pipeline) ---------------------

    def read_batch(
        self, origin: SiteId, blocks: Sequence[BlockIndex]
    ) -> Dict[BlockIndex, bytes]:
        """Read a whole batch of blocks on behalf of ``origin``.

        Semantically equivalent to calling :meth:`read` once per block,
        but implementations amortize the consistency machinery: the
        three concrete protocols collect versions for every block in
        ONE round and refresh stale copies with ONE scatter-gather
        transfer per source, so an n-block batch costs one quorum
        round instead of n.  Per-block guarantees (quorum intersection,
        read-latest-write) are unchanged; nothing is promised *across*
        blocks.  The base implementation loops, so every protocol is
        batch-capable by construction.
        """
        return {
            block: self.read(origin, block)
            for block in dict.fromkeys(blocks)
        }

    def write_batch(
        self, origin: SiteId, updates: Mapping[BlockIndex, bytes]
    ) -> Dict[BlockIndex, int]:
        """Write a whole batch of blocks on behalf of ``origin``.

        Returns ``block -> assigned version``.  Implementations fan the
        entire batch out in ONE transmission (plus one shared
        version-collection round for voting), preserving each scheme's
        per-block semantics: version assignment, quorum checks, fencing
        of silent members and torn-write reporting all behave exactly as
        if the blocks had been written one at a time.  A mid-fan-out
        origin crash tears every block of the batch the same way a
        single-block write is torn -- each block individually remains
        consistent; no cross-block atomicity is claimed.  The base
        implementation loops in ascending index order.
        """
        return {
            block: self.write(origin, block, updates[block])
            for block in sorted(updates)
        }

    @abc.abstractmethod
    def is_available(self) -> bool:
        """Whether the replicated block device can currently serve access.

        This is the predicate whose steady-state probability Section 4
        derives: a quorum of up sites for voting, at least one available
        copy for the available-copy schemes.
        """

    @abc.abstractmethod
    def on_site_failed(self, site_id: SiteId) -> None:
        """A site just crashed (fail-stop)."""

    @abc.abstractmethod
    def on_site_repaired(self, site_id: SiteId) -> None:
        """A site's hardware just came back; run the recovery procedure."""

    # -- simulator wiring -----------------------------------------------------

    def bind(self, process: FailureRepairProcess) -> None:
        """Subscribe this protocol to a failure/repair process."""
        process.on_failure(lambda site_id, _t: self.on_site_failed(site_id))
        process.on_repair(lambda site_id, _t: self.on_site_repaired(site_id))

    # -- fault observability -----------------------------------------------------

    def note_corruption(self, site_id: SiteId, block: BlockIndex) -> None:
        """A corrupt copy of ``block`` was detected at ``site_id``."""
        self.corruptions_detected += 1
        if self.recorder is not None:
            self.recorder.corruption_detected(site_id, block)

    def note_heal(self, site_id: SiteId, block: BlockIndex) -> None:
        """A corrupt copy of ``block`` at ``site_id`` was refreshed."""
        self.blocks_healed += 1
        if self.recorder is not None:
            self.recorder.block_healed(site_id, block)

    def fence(self, site_id: SiteId) -> None:
        """Evict a non-responding site, enforcing the fail-stop model.

        Available-copy correctness hinges on every available copy taking
        every write; a site whose delivery receipt / acknowledgement is
        missing can no longer be assumed current, so it is treated as
        failed and must run the ordinary repair procedure to rejoin.
        """
        self.sites_fenced += 1
        if self.recorder is not None:
            self.recorder.site_fenced(site_id)
        self.on_site_failed(site_id)

    # -- recovery traffic attribution -------------------------------------------

    def _record_recovery(self, start_total: int) -> None:
        """Attribute messages sent since ``start_total`` to recovery."""
        spent = self.meter.total - start_total
        self.meter.messages_for("recovery").add(spent)
        if self.tracer.enabled:
            self.tracer.event(
                "protocol.recovery",
                layer="protocol",
                scheme=self.scheme.value,
                messages=spent,
            )

    # -- invariants (used by tests and debug assertions) --------------------------

    def consistency_report(self) -> Dict[BlockIndex, List[SiteId]]:
        """For each written block: available sites holding a stale copy.

        An empty report means every available site agrees with the
        highest version of every block -- the core invariant of the
        available-copy schemes (voting only guarantees it for quorums).
        """
        stale: Dict[BlockIndex, List[SiteId]] = {}
        available = self.available_sites()
        if not available:
            return stale
        for block in range(self.num_blocks):
            versions = [s.block_version(block) for s in available]
            top = max(versions)
            if top == 0:
                continue
            behind = [
                s.site_id
                for s, v in zip(available, versions)
                if v < top
            ]
            if behind:
                stale[block] = behind
        return stale
