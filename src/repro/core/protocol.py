"""Framework shared by the three consistency-control protocols.

A :class:`ReplicationProtocol` manages one replica group: a fixed set of
:class:`~repro.device.site.Site` objects joined by a
:class:`~repro.net.Network`.  It exposes the operations the reliable
device needs (`read`, `write`), the failure/repair entry points driven by
the simulator, and the availability predicate the analysis section
studies (is the replicated block currently accessible?).

Concrete subclasses implement the paper's Figures 3-6:

* :class:`~repro.core.voting.VotingProtocol` (Figures 3-4),
* :class:`~repro.core.available_copy.AvailableCopyProtocol` (Figure 5),
* :class:`~repro.core.naive.NaiveAvailableCopyProtocol` (Figure 6).

Traffic attribution: reads and writes are bracketed with
``meter.record("read"/"write")``; recovery traffic (including version
vector exchanges deferred until after a total failure resolves) is
attributed manually so that *total* recovery traffic divided by the
number of repair events reproduces the paper's per-recovery costs.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Sequence, Set

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..device.site import Site
    from ..membership.view import View
    from .policy import QuorumPolicy
from ..errors import MembershipError, SiteDownError
from ..net.network import Network
from ..obs.trace import Span
from ..net.traffic import TrafficMeter
from ..sim.failures import FailureRepairProcess
from ..types import BlockIndex, SchemeName, SiteId, SiteState
from .round import QuorumRound

__all__ = ["ReplicationProtocol"]


class ReplicationProtocol(abc.ABC):
    """Base class for block-level consistency-control protocols."""

    def __init__(self, sites: Sequence['Site'], network: Network) -> None:
        if not sites:
            raise ValueError("a replica group needs at least one site")
        ids = [site.site_id for site in sites]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate site ids in replica group: {ids}")
        self._sites: Dict[SiteId, 'Site'] = {s.site_id: s for s in sites}
        self._order: List[SiteId] = ids
        #: site id -> position in ``_order``; maintained by
        #: adopt/expel (and the voting view commit, which reorders
        #: ``_order``).  The pooled round's up-mask is indexed by it.
        self._pos_of: Dict[SiteId, int] = {
            s: i for i, s in enumerate(ids)
        }
        self._network = network
        for site in sites:
            network.attach(site)
        #: Freelist of :class:`~repro.core.round.QuorumRound` objects;
        #: the steady-state operation loop borrows one per round and
        #: returns it in a ``finally``, so the pool stays at its
        #: high-water mark (nesting depth, in practice 1) even across
        #: failing operations.
        self._round_pool: List[QuorumRound] = []
        #: Reusable traffic-attribution context managers, one per
        #: operation kind.  ``TrafficMeter.record`` returns a stateless
        #: handle (enter/exit mutate only the meter), so caching them
        #: elides a handle allocation per operation; the meter itself
        #: is fixed at network construction.
        meter = network.meter
        self._record_read = meter.record("read")
        self._record_write = meter.record("write")
        self._record_batch_read = meter.record("batch_read")
        self._record_batch_write = meter.record("batch_write")
        #: The scheme tag every protocol span carries (see
        #: :meth:`_span`); ``getattr`` tolerates test stubs whose
        #: ``scheme`` is a plain placeholder.
        self._scheme_value: str = getattr(self.scheme, "value", "")
        geometries = {(s.store.num_blocks, s.store.block_size) for s in sites}
        if len(geometries) != 1:
            raise ValueError(
                f"replica sites disagree on device geometry: {geometries}"
            )
        #: Optional fault-history recorder (see :mod:`repro.faults`); the
        #: protocols notify it of detections, heals and fencings.  None on
        #: the fault-free path.
        self.recorder = None
        #: Corrupt copies detected at read/repair/scrub time.
        self.corruptions_detected = 0
        #: Corrupt copies overwritten with fresh data from a peer.
        self.blocks_healed = 0
        #: Sites evicted from the group after failing to take a write
        #: fan-out (available-copy schemes enforcing fail-stop).
        self.sites_fenced = 0
        #: The committed membership view (None until a
        #: :class:`~repro.membership.manager.MembershipManager` installs
        #: one; the static-group paths never consult it).
        self._view: Optional['View'] = None
        #: The successor view while a view change is in flight.
        self._pending_view: Optional['View'] = None
        #: Whether handlers reject in-flight writes tagged with an older
        #: epoch than the one they have adopted (the safe default; the
        #: quorum-drift tutorial disables it to demonstrate the hazard).
        self.epoch_fencing = True
        #: Sites adopted mid-view-change that are not yet caught up
        #: (available-copy schemes park them COMATOSE while the state
        #: transfer runs; invariants exempt them).
        self.joining: Set[SiteId] = set()
        #: Writes fenced at an epoch boundary (observability).
        self.epoch_fences = 0
        #: The (RF, R, W) quorum policy in force, or None for the
        #: paper's fixed quorum composition.  Set by subclasses that
        #: accept one (see :mod:`repro.core.policy`).
        self.policy: Optional['QuorumPolicy'] = None
        #: Hinted handoff: missed updates parked on fallback sites.
        self.hints_parked = 0
        #: Hinted handoff: parked updates replayed to repaired owners.
        self.hints_replayed = 0
        #: Read repair: newest-version pushes to stale read voters.
        self.read_repairs = 0

    # -- structure ----------------------------------------------------------

    @property
    def sites(self) -> List['Site']:
        """The group's sites, in declaration order."""
        return [self._sites[i] for i in self._order]

    @property
    def site_ids(self) -> List[SiteId]:
        return list(self._order)

    @property
    def num_sites(self) -> int:
        return len(self._order)

    @property
    def network(self) -> Network:
        return self._network

    @property
    def meter(self) -> TrafficMeter:
        return self._network.meter

    @property
    def tracer(self):
        """The span tracer (the network's; a no-op unless wired)."""
        return self._network.tracer

    def _span(self, op: str, **attrs):
        """Open a ``protocol.<op>`` span tagged with this scheme.

        The concrete protocols bracket each read/write/batch operation
        with it; outcomes (quorum misses, down origins, corruption) are
        stamped automatically from the raised exception.  The scheme
        tag is cached at construction: ``self.scheme.value`` costs two
        Python-level descriptor calls per span otherwise.
        """
        tracer = self._network._tracer
        clock = tracer._clock if tracer.enabled else None
        if clock is None:
            # Disabled or tick-clocked tracer: the method path (which
            # no-ops or advances the tick respectively).
            return tracer.span(
                f"protocol.{op}",
                layer="protocol",
                scheme=self._scheme_value,
                **attrs,
            )
        # Clocked tracer: build the record inline -- same id, name,
        # timestamp and attrs ``Tracer.span`` would write, minus the
        # call frame, the layer re-validation and the kwargs repack.
        span_attrs = {"scheme": self._scheme_value}
        if attrs:
            span_attrs.update(attrs)
        record = [
            tracer._next_id, f"protocol.{op}", "protocol",
            float(clock()), span_attrs, None, "",
        ]
        tracer._next_id = record[0] + 1
        tracer._records.append(record)
        pool = tracer._span_pool
        if pool:
            return pool.pop()._reuse(record)
        return Span(tracer, record)

    # -- pooled round state ---------------------------------------------------

    def _borrow_round(self) -> QuorumRound:
        """A reset round sized for the current group.

        Callers must return it via :meth:`_release_round` in a
        ``finally`` so that a raising operation does not leak it.
        """
        pool = self._round_pool
        rnd = pool.pop() if pool else QuorumRound()
        rnd.begin(len(self._order))
        return rnd

    def _release_round(self, rnd: QuorumRound) -> None:
        """Return a borrowed round to the freelist."""
        self._round_pool.append(rnd)

    def site(self, site_id: SiteId) -> "Site":
        """Look up a member site by id."""
        try:
            return self._sites[site_id]
        except KeyError:
            raise SiteDownError(site_id, "not a member of this group") from None

    @property
    def num_blocks(self) -> int:
        return self.sites[0].store.num_blocks

    @property
    def block_size(self) -> int:
        return self.sites[0].store.block_size

    # -- site-state helpers ---------------------------------------------------

    def available_sites(self) -> List['Site']:
        """Sites in the AVAILABLE state, in declaration order."""
        return [s for s in self.sites if s.state is SiteState.AVAILABLE]

    def comatose_sites(self) -> List['Site']:
        """Sites in the COMATOSE state, in declaration order."""
        return [s for s in self.sites if s.state is SiteState.COMATOSE]

    def operational_sites(self) -> List['Site']:
        """Sites whose process is running (not failed)."""
        return [s for s in self.sites if s.state is not SiteState.FAILED]

    def require_origin(self, origin: SiteId) -> "Site":
        """The site an operation is initiated at; must be operational."""
        site = self.site(origin)
        if site.state is SiteState.FAILED:
            raise SiteDownError(origin, "cannot initiate operations")
        return site

    # -- the protocol interface ------------------------------------------------

    @property
    @abc.abstractmethod
    def scheme(self) -> SchemeName:
        """Which of the paper's three schemes this object implements."""

    @abc.abstractmethod
    def read(self, origin: SiteId, block: BlockIndex) -> bytes:
        """Read ``block`` on behalf of the file system at ``origin``.

        Raises :class:`~repro.errors.DeviceUnavailableError` when the
        consistency protocol cannot currently serve reads.
        """

    @abc.abstractmethod
    def write(self, origin: SiteId, block: BlockIndex, data: bytes) -> int:
        """Write ``block`` on behalf of the file system at ``origin``.

        Returns the version number assigned to the write (the fault
        checker correlates histories with it).  Raises
        :class:`~repro.errors.DeviceUnavailableError` when the
        consistency protocol cannot currently serve writes.
        """

    # -- batched operations (the vectorized I/O pipeline) ---------------------

    def read_batch(
        self, origin: SiteId, blocks: Sequence[BlockIndex]
    ) -> Dict[BlockIndex, bytes]:
        """Read a whole batch of blocks on behalf of ``origin``.

        Semantically equivalent to calling :meth:`read` once per block,
        but implementations amortize the consistency machinery: the
        three concrete protocols collect versions for every block in
        ONE round and refresh stale copies with ONE scatter-gather
        transfer per source, so an n-block batch costs one quorum
        round instead of n.  Per-block guarantees (quorum intersection,
        read-latest-write) are unchanged; nothing is promised *across*
        blocks.  The base implementation loops, so every protocol is
        batch-capable by construction.
        """
        return {
            block: self.read(origin, block)
            for block in dict.fromkeys(blocks)
        }

    def write_batch(
        self, origin: SiteId, updates: Mapping[BlockIndex, bytes]
    ) -> Dict[BlockIndex, int]:
        """Write a whole batch of blocks on behalf of ``origin``.

        Returns ``block -> assigned version``.  Implementations fan the
        entire batch out in ONE transmission (plus one shared
        version-collection round for voting), preserving each scheme's
        per-block semantics: version assignment, quorum checks, fencing
        of silent members and torn-write reporting all behave exactly as
        if the blocks had been written one at a time.  A mid-fan-out
        origin crash tears every block of the batch the same way a
        single-block write is torn -- each block individually remains
        consistent; no cross-block atomicity is claimed.  The base
        implementation loops in ascending index order.
        """
        return {
            block: self.write(origin, block, updates[block])
            for block in sorted(updates)
        }

    @abc.abstractmethod
    def is_available(self) -> bool:
        """Whether the replicated block device can currently serve access.

        This is the predicate whose steady-state probability Section 4
        derives: a quorum of up sites for voting, at least one available
        copy for the available-copy schemes.
        """

    @abc.abstractmethod
    def on_site_failed(self, site_id: SiteId) -> None:
        """A site just crashed (fail-stop)."""

    @abc.abstractmethod
    def on_site_repaired(self, site_id: SiteId) -> None:
        """A site's hardware just came back; run the recovery procedure."""

    # -- dynamic membership (epochs and view changes) --------------------------

    @property
    def view(self) -> Optional['View']:
        """The committed membership view (None for static groups)."""
        return self._view

    @property
    def pending_view(self) -> Optional['View']:
        """The successor view while a change is in flight, else None."""
        return self._pending_view

    @property
    def in_view_change(self) -> bool:
        return self._pending_view is not None

    def current_epoch(self) -> int:
        """The epoch new operations are tagged with.

        During a transition window this is already the *successor*
        epoch: every operational member adopted it when the window
        opened, so in-window writes pass the fence while writes that
        started before the window (older tag) are rejected.
        """
        if self._pending_view is not None:
            return self._pending_view.epoch
        return self._view.epoch if self._view is not None else 0

    def install_view(self, view: 'View') -> None:
        """Adopt ``view`` as the group's initial committed view.

        Called once by the membership manager; members must match the
        group exactly (installation never changes membership -- view
        *changes* do, via begin/commit).
        """
        if set(view.sites) != set(self._order):
            raise MembershipError(
                f"view members {sorted(view.sites)} do not match the "
                f"group {sorted(self._order)}"
            )
        self._view = view
        self._pending_view = None
        for site in self.operational_sites():
            site.set_epoch(view.epoch)

    def begin_view_change(self, new_view: 'View') -> None:
        """Open the transition window toward ``new_view``.

        Bumps every operational member to the successor epoch (fencing
        in-flight writes tagged with the old one).  Subclasses extend
        this with scheme-specific window state -- voting arms the
        joint-quorum checks here.
        """
        if self._view is None:
            raise MembershipError(
                "no view installed; call install_view first"
            )
        if self._pending_view is not None:
            raise MembershipError(
                f"a view change toward epoch "
                f"{self._pending_view.epoch} is already in flight"
            )
        if new_view.epoch != self._view.epoch + 1:
            raise MembershipError(
                f"expected successor epoch {self._view.epoch + 1}, "
                f"got {new_view.epoch}"
            )
        self._pending_view = new_view
        for site in self.operational_sites():
            site.set_epoch(new_view.epoch)

    def commit_view_change(self, view: 'View') -> None:
        """Make ``view`` the committed view and close the window.

        The manager has already expelled removed members; subclasses
        rebuild scheme state (vote reassignment, was-available sets)
        before delegating here.
        """
        if set(view.sites) != set(self._order):
            raise MembershipError(
                f"cannot commit view {sorted(view.sites)}: group "
                f"membership is {sorted(self._order)}"
            )
        self._view = view
        self._pending_view = None
        for site in self.operational_sites():
            site.set_epoch(view.epoch)
        self.joining.clear()

    def adopt_site(self, site: 'Site') -> None:
        """Attach a joining site to the group and its network.

        The joiner participates in message fan-outs immediately; the
        membership manager is responsible for bringing its data current
        and (for available-copy schemes) keeping it COMATOSE until then.
        """
        if site.site_id in self._sites:
            raise MembershipError(
                f"site {site.site_id} is already a member"
            )
        geometry = (site.store.num_blocks, site.store.block_size)
        if geometry != (self.num_blocks, self.block_size):
            raise MembershipError(
                f"joining site {site.site_id} disagrees on device "
                f"geometry: {geometry} vs "
                f"{(self.num_blocks, self.block_size)}"
            )
        self._sites[site.site_id] = site
        self._pos_of[site.site_id] = len(self._order)
        self._order.append(site.site_id)
        self._network.attach(site)
        site.set_epoch(self.current_epoch())

    def expel_site(self, site_id: SiteId) -> None:
        """Remove a member from the group and detach it from the network."""
        if site_id not in self._sites:
            raise MembershipError(f"site {site_id} is not a member")
        if len(self._order) == 1:
            raise MembershipError("cannot expel the last member")
        del self._sites[site_id]
        self._order.remove(site_id)
        self._pos_of = {s: i for i, s in enumerate(self._order)}
        self._network.detach(site_id)
        self.joining.discard(site_id)

    def _sync_epoch(self, site: 'Site') -> None:
        """Bring a repairing site's durable epoch current.

        A member that was down across one or more view changes must not
        keep fencing (or failing to fence) against its stale epoch;
        every repair path calls this before the site rejoins service.
        """
        if self._view is not None:
            site.set_epoch(self.current_epoch())

    def _epoch_rejects(self, node, epoch_tag: int) -> bool:
        """Whether ``node`` fences a message tagged ``epoch_tag``.

        True when fencing is enabled and the node has durably adopted a
        newer epoch than the message carries -- i.e. a view change
        opened between the operation's start and this delivery.
        """
        return (
            self.epoch_fencing
            and self._view is not None
            and node.get_epoch() > epoch_tag
        )

    # -- simulator wiring -----------------------------------------------------

    def bind(self, process: FailureRepairProcess) -> None:
        """Subscribe this protocol to a failure/repair process."""
        process.on_failure(lambda site_id, _t: self.on_site_failed(site_id))
        process.on_repair(lambda site_id, _t: self.on_site_repaired(site_id))

    # -- fault observability -----------------------------------------------------

    def note_corruption(self, site_id: SiteId, block: BlockIndex) -> None:
        """A corrupt copy of ``block`` was detected at ``site_id``."""
        self.corruptions_detected += 1
        if self.recorder is not None:
            self.recorder.corruption_detected(site_id, block)

    def note_heal(self, site_id: SiteId, block: BlockIndex) -> None:
        """A corrupt copy of ``block`` at ``site_id`` was refreshed."""
        self.blocks_healed += 1
        if self.recorder is not None:
            self.recorder.block_healed(site_id, block)

    def fence(self, site_id: SiteId) -> None:
        """Evict a non-responding site, enforcing the fail-stop model.

        Available-copy correctness hinges on every available copy taking
        every write; a site whose delivery receipt / acknowledgement is
        missing can no longer be assumed current, so it is treated as
        failed and must run the ordinary repair procedure to rejoin.
        """
        self.sites_fenced += 1
        if self.recorder is not None:
            self.recorder.site_fenced(site_id)
        self.on_site_failed(site_id)

    # -- recovery traffic attribution -------------------------------------------

    def _record_recovery(self, start_total: int) -> None:
        """Attribute messages sent since ``start_total`` to recovery."""
        spent = self.meter.total - start_total
        self.meter.messages_for("recovery").add(spent)
        if self.tracer.enabled:
            self.tracer.event(
                "protocol.recovery",
                layer="protocol",
                scheme=self.scheme.value,
                messages=spent,
            )

    # -- invariants (used by tests and debug assertions) --------------------------

    def consistency_report(self) -> Dict[BlockIndex, List[SiteId]]:
        """For each written block: available sites holding a stale copy.

        An empty report means every available site agrees with the
        highest version of every block -- the core invariant of the
        available-copy schemes (voting only guarantees it for quorums).
        """
        stale: Dict[BlockIndex, List[SiteId]] = {}
        available = self.available_sites()
        if not available:
            return stale
        for block in range(self.num_blocks):
            versions = [s.block_version(block) for s in available]
            top = max(versions)
            if top == 0:
                continue
            behind = [
                s.site_id
                for s, v in zip(available, versions)
                if v < top
            ]
            if behind:
                stale[block] = behind
        return stale
