"""Was-available sets and their closure (Definitions 3.1 and 3.2).

The available-copy scheme must, after a *total* failure, identify a copy
that is guaranteed current before bringing the replica group back into
service.  Each site ``s`` durably maintains a was-available set ``W_s``:
the sites that received the most recent write ``s`` knows of, plus the
sites that have since repaired from ``s``.  The site that failed last is
always a member of ``W_s`` as stored at ``s``'s failure time, because it
was still available (hence receiving writes / serving repairs) when ``s``
went down.

The **closure** ``C*(W_s)`` chases this membership transitively: any
member ``t`` of the candidate set may itself have more recent knowledge,
recorded in ``W_t``, so the closure unions the stored was-available sets
of its members until a fixed point.  Waiting until every member of the
closure has recovered is therefore *safe*: the closure is a superset of
the set of sites that could have failed last, so the highest-versioned
copy among them is guaranteed current.  It can be *pessimistic* -- a
superset means potentially waiting for more sites than strictly necessary
-- which is exactly the availability gap between the tracked and the
naive scheme (where ``W_s = S`` identically and the closure is the whole
group).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Mapping, Optional, Set

from ..types import SiteId

__all__ = ["closure", "closure_ready"]


def closure(
    seed: AbstractSet[SiteId],
    known_sets: Mapping[SiteId, AbstractSet[SiteId]],
) -> FrozenSet[SiteId]:
    """Transitive closure of was-available sets, ``C*(seed)``.

    Parameters
    ----------
    seed:
        The starting was-available set (``W_s`` of the recovering site).
    known_sets:
        Stored was-available sets for the sites whose stable storage can
        currently be consulted (i.e. recovered sites).  Sites absent from
        this mapping contribute nothing to the expansion -- their storage
        cannot be read -- but remain members of the closure.
    """
    result: Set[SiteId] = set(seed)
    frontier: Set[SiteId] = set(seed)
    while frontier:
        member = frontier.pop()
        for other in known_sets.get(member, ()):  # unknown => terminal
            if other not in result:
                result.add(other)
                frontier.add(other)
    return frozenset(result)


def closure_ready(
    seed: AbstractSet[SiteId],
    known_sets: Mapping[SiteId, AbstractSet[SiteId]],
    recovered: AbstractSet[SiteId],
) -> Optional[FrozenSet[SiteId]]:
    """The closure if every member has recovered, else ``None``.

    This is the guard of Figure 5's first ``select`` arm ("when all sites
    in C*(W_s) have recovered").  A member that has not recovered makes
    the guard false outright -- and since its stable storage cannot be
    consulted, the closure could only grow once it does recover, never
    shrink, so answering ``None`` is always correct.
    """
    result = closure(seed, known_sets)
    if result <= recovered:
        return result
    return None
