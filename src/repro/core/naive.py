"""Naive available copy (Section 3.3, Figure 6).

The naive scheme is available copy with the was-available sets frozen at
``W_s = S`` for every site: no failure information is ever maintained.
Writes are fire-and-forget -- a single broadcast (or ``n - 1``
individually addressed messages), with **no acknowledgements**, which is
what makes it the cheapest writer of all three schemes.  The price is
worst-case recovery: after a total failure the group must wait until
*every* site has recovered before the highest-versioned copy can be
declared current (Figure 8's state diagram has no transition from
``S'_j`` to an available state for ``j <= n - 2``).

The paper's conclusion is that this trade is worth it: for realistic
failure-to-repair ratios (rho well below 0.10) the availability loss is
negligible while the write traffic saving is permanent -- making naive
available copy "the algorithm of choice" for the reliable device.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..device.site import Site
    from ..membership.view import View
from ..errors import SiteDownError, StaleEpochError
from ..net.message import MessageCategory
from ..net.network import Network
from ..obs.trace import _NULL_SPAN
from ..types import BlockIndex, SchemeName, SiteId, SiteState
from .available_copy import AvailableCopyBase
from .policy import QuorumPolicy

__all__ = ["NaiveAvailableCopyProtocol"]


class NaiveAvailableCopyProtocol(AvailableCopyBase):
    """Available copy without failure bookkeeping (Figure 6)."""

    def __init__(
        self,
        sites: Sequence['Site'],
        network: Network,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(sites, network, policy=policy)
        everyone = set(self.site_ids)
        for site in self.sites:
            # W_s is fixed at S; stored once so recovery probes and the
            # closure machinery behave uniformly across schemes.
            site.set_was_available(everyone)

    @property
    def scheme(self) -> SchemeName:
        return SchemeName.NAIVE_AVAILABLE_COPY

    # -- write: one unacknowledged broadcast --------------------------------

    def write(self, origin: SiteId, block: BlockIndex, data: bytes) -> int:
        """Broadcast the new block to all sites; reliable delivery does
        the rest (Section 5.1: one message on a multicast network,
        ``n - 1`` with unique addressing).

        The scheme has no acknowledgements, so enforcing "every
        available copy takes every write" falls to the transport's
        delivery receipts: an available site the reliable broadcast
        could not deliver to (transient message loss, injected faults)
        is fenced -- treated as failed until it runs the ordinary
        repair procedure."""
        site = self._require_available_origin(origin)
        if self.policy is not None:
            self._policy_gate(self.policy.w)
        network = self._network
        span = (
            self._span("write", origin=origin, block=block)
            if network._tracer.enabled else _NULL_SPAN
        )
        with self._record_write, span:
            new_version = site.block_version(block) + 1
            epoch_tag = self.current_epoch()
            blob = bytes(data)
            fenced: List[SiteId] = []

            def apply(node, payload):
                index, body, version = payload
                if node.state is not SiteState.AVAILABLE:
                    return
                if self._epoch_rejects(node, epoch_tag):
                    fenced.append(node.site_id)
                    return
                node.write_block(index, body, version)

            delivered = network.broadcast_oneway(
                src=origin,
                category=MessageCategory.WRITE_UPDATE,
                handler=apply,
                payload=(block, blob, new_version),
            )
            if site.state is SiteState.FAILED:
                # Crashed mid-fan-out (fault injection): a torn write.
                if self.recorder is not None:
                    self.recorder.torn_write(block, blob, new_version)
                raise SiteDownError(origin, "failed during the write fan-out")
            # Delivery receipts go into a pooled round's up-mask so the
            # fencing sweep tests membership by position instead of
            # scanning the receipt list per peer.
            rnd = self._borrow_round()
            try:
                pos_of = self._pos_of
                for recipient in delivered:
                    rnd.mark(pos_of[recipient])
                for peer in self.available_sites():
                    pid = peer.site_id
                    if (pid != origin
                            and not rnd.is_marked(pos_of[pid])
                            and pid not in fenced
                            and network.can_communicate(origin, pid)):
                        self.fence(pid)
            finally:
                self._release_round(rnd)
            if fenced:
                # Epoch-fenced recipients refused the stale-tagged
                # update; the write is torn and must retry under the
                # new epoch rather than leave an available copy stale.
                self.epoch_fences += len(fenced)
                if self.recorder is not None:
                    self.recorder.torn_write(block, blob, new_version)
                raise StaleEpochError(
                    f"write of block {block} tagged epoch {epoch_tag} "
                    f"was fenced by {sorted(set(fenced))}"
                )
            site.write_block(block, blob, new_version)
            return new_version

    def write_batch(
        self, origin: SiteId, updates: Mapping[BlockIndex, bytes]
    ) -> Dict[BlockIndex, int]:
        """Broadcast the whole batch in ONE unacknowledged message.

        The scheme's signature cheapness survives batching: an n-block
        batch still costs a single multicast transmission.  Fencing by
        delivery receipt, per-block version assignment and torn-write
        reporting behave exactly as in :meth:`write`.
        """
        blocks = sorted(updates)
        if not blocks:
            return {}
        site = self._require_available_origin(origin)
        if self.policy is not None:
            self._policy_gate(self.policy.w)
        network = self._network
        span = (
            self._span("write_batch", origin=origin, batch=len(blocks))
            if network._tracer.enabled else _NULL_SPAN
        )
        with self._record_batch_write, span:
            new_versions = {b: site.block_version(b) + 1 for b in blocks}
            batch = {
                b: (bytes(updates[b]), new_versions[b]) for b in blocks
            }
            epoch_tag = self.current_epoch()
            fenced: List[SiteId] = []

            def apply(node, payload):
                if node.state is not SiteState.AVAILABLE:
                    return
                if self._epoch_rejects(node, epoch_tag):
                    fenced.append(node.site_id)
                    return
                for index in sorted(payload):
                    blob, version = payload[index]
                    node.write_block(index, blob, version)

            delivered = network.broadcast_oneway(
                src=origin,
                category=MessageCategory.BATCH_WRITE_UPDATE,
                handler=apply,
                payload=batch,
            )
            if site.state is SiteState.FAILED:
                # Crashed mid-fan-out: every block of the batch is torn.
                if self.recorder is not None:
                    for b in blocks:
                        self.recorder.torn_write(
                            b, batch[b][0], new_versions[b]
                        )
                raise SiteDownError(
                    origin, "failed during the batched write fan-out"
                )
            rnd = self._borrow_round()
            try:
                pos_of = self._pos_of
                for recipient in delivered:
                    rnd.mark(pos_of[recipient])
                for peer in self.available_sites():
                    pid = peer.site_id
                    if (pid != origin
                            and not rnd.is_marked(pos_of[pid])
                            and pid not in fenced
                            and network.can_communicate(origin, pid)):
                        self.fence(pid)
            finally:
                self._release_round(rnd)
            if fenced:
                self.epoch_fences += len(fenced)
                if self.recorder is not None:
                    for b in blocks:
                        self.recorder.torn_write(
                            b, batch[b][0], new_versions[b]
                        )
                raise StaleEpochError(
                    f"batched write of {len(blocks)} blocks tagged "
                    f"epoch {epoch_tag} was fenced by "
                    f"{sorted(set(fenced))}"
                )
            for b in blocks:
                site.write_block(b, batch[b][0], new_versions[b])
            return new_versions

    # -- dynamic membership ---------------------------------------------------

    def commit_view_change(self, view: 'View') -> None:
        """Close the window and re-freeze ``W_s = S`` at the new ``S``.

        The naive scheme never maintains failure information, so the
        only bookkeeping a view change needs is resetting every
        operational site's frozen was-available set to the new
        membership -- total-failure recovery then waits for exactly the
        *current* members, neither for expelled sites (deadlock) nor
        without the joiner (unsafe).
        """
        super().commit_view_change(view)
        everyone = set(self._order)
        for site in self.operational_sites():
            site.set_was_available(everyone)

    # -- failure handling -------------------------------------------------------

    def on_site_failed(self, site_id: SiteId) -> None:
        self.site(site_id).crash()

    # -- repair: Figure 6 ----------------------------------------------------------

    def on_site_repaired(self, site_id: SiteId) -> None:
        site = self.site(site_id)
        start = self.meter.total
        self._sync_epoch(site)
        site.set_state(SiteState.COMATOSE)
        replies = self._probe(site)
        available = [
            (s, total)
            for s, (state, _w, total) in replies.items()
            if state == SiteState.AVAILABLE.value
        ]
        if available:
            # Second select arm: repair from any available copy.
            best = max(available, key=lambda item: (item[1], -item[0]))[0]
            self._repair_from(self.site(best), site)
        else:
            self._resolve_total_failure()
        self._record_recovery(start)

    def _resolve_total_failure(self) -> None:
        """First select arm of Figure 6: wait for *all* sites.

        Only when every site has recovered can the highest-versioned
        copy be known current; it is marked available and every other
        copy repairs from it.
        """
        if len(self.operational_sites()) != self.num_sites:
            return
        anchor = max(
            self.sites, key=lambda s: (s.version_total(), -s.site_id)
        )
        anchor.set_state(SiteState.AVAILABLE)
        self.total_failure_recoveries += 1
        for site in self.comatose_sites():
            self._repair_from(anchor, site)
