"""Majority consensus voting with lazy block recovery (Section 3.1).

The read algorithm (Figure 3) collects votes -- each vote carries the
voter's version number for the requested block and its weight -- and
proceeds only when the gathered weight exceeds the read quorum.  Because
quorum composition guarantees a current copy is present in any quorum, a
stale local copy is simply refreshed from the highest-versioned voter
(one extra block transfer); this *lazy, per-block* recovery is what
block-level replication buys: the scheme never runs a recovery pass when
a site repairs, so voting incurs **no traffic upon recovery** (Section
5.1).

The write algorithm (Figure 4) collects the same votes, takes the maximum
version plus one, and pushes the new block to every site in the quorum,
repairing all operational out-of-date copies as a side effect.

Transmission accounting (Section 5): on a multicast network a read costs
``U`` messages (one vote request plus ``U - 1`` replies; one more if the
local copy was stale) and a write costs ``1 + U`` (votes plus the update
broadcast).  With unique addressing a read costs ``n + U - 2`` (plus one)
and a write ``n + 2U - 3``.  ``U`` is the number of operational sites,
local site included.

An optional *eager repair* mode (``eager_repair=True``) restores the
conventional behaviour of file-level voting schemes -- refreshing every
stale block when a site repairs -- and exists purely as the ablation
baseline for the paper's "no recovery traffic" claim.

**Witnesses.**  Sites flagged ``is_witness`` vote with version numbers
but store no data (Paris, FTCS 1986 -- the paper's reference [10]).
Full-block writes succeed with any quorum (new contents supersede old
ones, so no current copy is needed -- another block-level benefit);
reads additionally require a reachable *data* site holding the quorum's
highest version and raise
:class:`~repro.errors.NoCurrentDataCopyError` otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..device.site import Site
    from ..membership.view import View
from ..errors import (
    CorruptBlockError,
    DeviceUnavailableError,
    MembershipError,
    NoCurrentDataCopyError,
    QuorumNotReachedError,
    SiteDownError,
    StaleEpochError,
)
from ..net.message import MessageCategory
from ..net.network import Network
from ..types import BlockIndex, SchemeName, SiteId, SiteState
from .quorum import QuorumSpec
from .protocol import ReplicationProtocol

__all__ = ["VotingProtocol"]


class VotingProtocol(ReplicationProtocol):
    """Weighted majority consensus voting over a replica group.

    Parameters
    ----------
    sites:
        The replica group.  Site weights must match ``spec.weights``
        positionally.
    network:
        The group's network.
    spec:
        Quorum weights and thresholds; defaults to equal-weight majority
        with the paper's tie-breaking adjustment for even groups.
    eager_repair:
        When True, a repairing site immediately refreshes all its stale
        blocks from a current site (ablation baseline; the paper's
        algorithm leaves repair to later reads and writes).
    """

    def __init__(
        self,
        sites: Sequence['Site'],
        network: Network,
        spec: Optional[QuorumSpec] = None,
        eager_repair: bool = False,
    ) -> None:
        super().__init__(sites, network)
        if spec is None:
            spec = QuorumSpec.majority(len(sites))
        if spec.num_sites != len(sites):
            raise ValueError(
                f"quorum spec covers {spec.num_sites} sites, "
                f"group has {len(sites)}"
            )
        for index, site in enumerate(self.sites):
            if site.weight != spec.weight_of(index):
                raise ValueError(
                    f"site {site.site_id} weight {site.weight} does not "
                    f"match spec weight {spec.weight_of(index)}"
                )
        self._spec = spec
        self._index_of: Dict[SiteId, int] = {
            site.site_id: i for i, site in enumerate(self.sites)
        }
        self._eager_repair = eager_repair
        self._data_ids = [s.site_id for s in self.sites if not s.is_witness]
        if not self._data_ids:
            raise ValueError("a voting group needs at least one data site")
        #: Number of stale local copies refreshed lazily during reads.
        self.lazy_repairs = 0

    # -- metadata ---------------------------------------------------------

    @property
    def scheme(self) -> SchemeName:
        return SchemeName.VOTING

    @property
    def spec(self) -> QuorumSpec:
        return self._spec

    @property
    def data_site_ids(self) -> List[SiteId]:
        """Sites that store block contents (non-witnesses)."""
        return list(self._data_ids)

    @property
    def witness_ids(self) -> List[SiteId]:
        """Vote-only sites."""
        return [s for s in self.site_ids if s not in set(self._data_ids)]

    # -- dynamic membership (joint quorums during the window) -----------------

    def install_view(self, view: 'View') -> None:
        """Adopt the initial view; reject unsupported configurations.

        Dynamic membership re-votes members with the majority rule at
        every epoch, so it requires the group to already be a plain
        majority configuration: no witnesses, thresholds at half the
        total weight, and site weights matching the view's votes.
        """
        if any(s.is_witness for s in self.sites):
            raise MembershipError(
                "dynamic membership does not support witness sites"
            )
        half = self._spec.total_weight / 2.0
        if (self._spec.read_quorum != half
                or self._spec.write_quorum != half):
            raise MembershipError(
                "dynamic membership requires majority quorums "
                f"(spec has r={self._spec.read_quorum:g}, "
                f"w={self._spec.write_quorum:g}, total/2={half:g})"
            )
        for site in self.sites:
            if site.weight != view.vote_of(site.site_id):
                raise MembershipError(
                    f"site {site.site_id} weight {site.weight:g} does "
                    f"not match its view vote "
                    f"{view.vote_of(site.site_id):g}"
                )
        super().install_view(view)

    def commit_view_change(self, view: 'View') -> None:
        """Vote reassignment: the committed view defines the new quorums."""
        self._order = list(view.sites)
        for site_id, vote in zip(view.sites, view.votes):
            self._sites[site_id].set_weight(vote)
        self._spec = view.quorum_spec()
        self._index_of = {s: i for i, s in enumerate(view.sites)}
        self._data_ids = [
            s.site_id for s in self.sites if not s.is_witness
        ]
        super().commit_view_change(view)

    def _joint_views(self) -> Optional[Tuple['View', 'View']]:
        """(old, new) while a transition window is open, else None."""
        if self._pending_view is not None:
            return self._view, self._pending_view
        return None

    def _read_shortfall(
        self, voters: set
    ) -> Optional[Tuple[float, float]]:
        """None if ``voters`` form every active read quorum, else the
        (gathered, required) pair of the first view they miss.

        During a transition window the *joint* rule applies: the voters
        must exceed the read threshold of the old AND the new view, so
        a read is guaranteed to intersect the write quorum of the
        latest write no matter which side of the epoch boundary that
        write landed on.
        """
        views = self._joint_views()
        if views is not None:
            for view in views:
                gathered = view.gathered_weight(voters)
                if not gathered > view.read_quorum:
                    return gathered, view.read_quorum
            return None
        gathered = self._spec.gathered_weight(
            self._index_of[s] for s in voters if s in self._index_of
        )
        if not self._spec.meets_read(gathered):
            return gathered, self._spec.read_quorum
        return None

    def _write_shortfall(
        self, voters: set
    ) -> Optional[Tuple[float, float]]:
        """Joint-quorum analogue of :meth:`_read_shortfall` for writes."""
        views = self._joint_views()
        if views is not None:
            for view in views:
                gathered = view.gathered_weight(voters)
                if not gathered > view.write_quorum:
                    return gathered, view.write_quorum
            return None
        gathered = self._spec.gathered_weight(
            self._index_of[s] for s in voters if s in self._index_of
        )
        if not self._spec.meets_write(gathered):
            return gathered, self._spec.write_quorum
        return None

    # -- vote collection -----------------------------------------------------

    def _collect_votes(
        self, origin: 'Site', block: BlockIndex
    ) -> Dict[SiteId, int]:
        """Gather votes for ``block`` from every reachable site.

        Returns a map ``site_id -> version`` over the voters (origin
        included).  During a transition window the broadcast reaches
        the union of both views' members, so the joint quorum checks
        see every reachable voice.
        """

        def vote(node, payload):
            return node.block_version(payload)

        replies = self.network.broadcast_query(
            origin.site_id,
            request=MessageCategory.VOTE_REQUEST,
            reply=MessageCategory.VOTE_REPLY,
            handler=vote,
            payload=block,
        )
        versions: Dict[SiteId, int] = dict(replies)
        versions[origin.site_id] = origin.block_version(block)
        return versions

    @staticmethod
    def _best_voter(versions: Dict[SiteId, int]) -> SiteId:
        """The voter holding the highest version (lowest id on ties)."""
        top = max(versions.values())
        return min(s for s, v in versions.items() if v == top)

    def _collect_batch_votes(
        self, origin: 'Site', blocks: Sequence[BlockIndex]
    ) -> Dict[SiteId, Dict[BlockIndex, int]]:
        """ONE vote-collection round covering every block in the batch.

        A single BATCH_VOTE_REQUEST carries all the indexes; each
        reachable voter answers with one BATCH_VOTE_REPLY mapping every
        requested block to its version number.  The voter set is
        necessarily uniform across the batch -- the same voters answered
        for every block -- which is what lets one quorum check cover
        them all.
        """

        def vote(node, payload):
            return {b: node.block_version(b) for b in payload}

        replies = self.network.broadcast_query(
            origin.site_id,
            request=MessageCategory.BATCH_VOTE_REQUEST,
            reply=MessageCategory.BATCH_VOTE_REPLY,
            handler=vote,
            payload=tuple(blocks),
        )
        versions: Dict[SiteId, Dict[BlockIndex, int]] = dict(replies)
        versions[origin.site_id] = {
            b: origin.block_version(b) for b in blocks
        }
        return versions

    # -- Figure 3: READ -------------------------------------------------------

    def read(self, origin: SiteId, block: BlockIndex) -> bytes:
        site = self.require_origin(origin)
        if site.is_witness:
            raise SiteDownError(origin, "witnesses cannot serve clients")
        with self.meter.record("read"), \
                self._span("read", origin=origin, block=block):
            versions = self._collect_votes(site, block)
            shortfall = self._read_shortfall(set(versions))
            if shortfall is not None:
                raise QuorumNotReachedError(*shortfall)
            top = max(versions.values())
            if versions[origin] < top:
                self._refresh_from_voters(site, block, versions, top)
                self.lazy_repairs += 1
            try:
                return site.read_block(block)
            except CorruptBlockError:
                # Quorum composition guarantees a current copy exists in
                # the quorum; self-heal the local one from it and retry.
                self.note_corruption(origin, block)
                site.store.quarantine(block, top)
                self._refresh_from_voters(site, block, versions, top)
                self.note_heal(origin, block)
                return site.read_block(block)

    def _refresh_from_voters(
        self,
        site: 'Site',
        block: BlockIndex,
        versions: Dict[SiteId, int],
        top: int,
    ) -> None:
        """Pull the current copy of ``block`` from the best intact voter.

        Tries the data voters holding the quorum's highest version in id
        order; a voter whose own copy turns out corrupt is quarantined
        and skipped, as is one whose block transfer is lost in transit.
        Raises :class:`NoCurrentDataCopyError` when only witnesses
        attest ``top`` and :class:`CorruptBlockError` when every data
        copy at ``top`` is corrupt.
        """
        data_ids = set(self._data_ids)
        candidates = sorted(
            s for s, v in versions.items()
            if v == top and s != site.site_id and s in data_ids
        )
        if not candidates:
            raise NoCurrentDataCopyError(
                f"version {top} of block {block} is attested only "
                "by witnesses; no data copy is reachable"
            )
        any_intact = False
        for source in candidates:
            holder = self.site(source)
            try:
                data = holder.read_block(block)
            except CorruptBlockError:
                self.note_corruption(source, block)
                holder.store.quarantine(block)
                continue
            any_intact = True
            if self._push_block(
                source=source, target=site, block=block,
                data=data, version=holder.block_version(block),
            ):
                return
        if any_intact:
            # Intact copies exist but no transfer arrived (transient
            # delivery loss) -- the read fails cleanly rather than
            # serving the stale local copy; a retry can succeed.
            raise DeviceUnavailableError(
                f"could not refresh block {block}: every block "
                "transfer from a current copy was lost"
            )
        raise CorruptBlockError(
            block, site.site_id,
            detail=f"every reachable copy at version {top} is corrupt",
        )

    def _push_block(
        self,
        source: SiteId,
        target: 'Site',
        block: BlockIndex,
        data: bytes,
        version: int,
    ) -> bool:
        """The highest-versioned voter pushes the block to the reader.

        The vote request already carried the reader's version number, so
        a single block transfer suffices (the "+1" of Section 5.1).
        Returns whether the transfer was actually delivered.
        """

        def deliver(node, payload):
            index, blob, v = payload
            node.write_block(index, blob, v)

        return self.network.unicast_oneway(
            src=source,
            dst=target.site_id,
            category=MessageCategory.BLOCK_TRANSFER,
            handler=deliver,
            payload=(block, data, version),
        )

    # -- Figure 4: WRITE -----------------------------------------------------

    def write(self, origin: SiteId, block: BlockIndex, data: bytes) -> int:
        site = self.require_origin(origin)
        if site.is_witness:
            raise SiteDownError(origin, "witnesses cannot serve clients")
        with self.meter.record("write"), \
                self._span("write", origin=origin, block=block):
            versions = self._collect_votes(site, block)
            shortfall = self._write_shortfall(set(versions))
            if shortfall is not None:
                raise QuorumNotReachedError(*shortfall)
            new_version = max(versions.values()) + 1
            quorum_members = [s for s in versions if s != origin]
            epoch_tag = self.current_epoch()
            fenced: List[SiteId] = []

            def apply(node, payload):
                if self._epoch_rejects(node, epoch_tag):
                    # The epoch advanced under this fan-out (a view
                    # change committed between vote collection and
                    # delivery); the member refuses the stale-tagged
                    # update rather than apply it under quorums that no
                    # longer hold.
                    fenced.append(node.site_id)
                    return
                index, blob, v = payload
                if node.is_witness:
                    node.store.set_version(index, v)
                else:
                    node.write_block(index, blob, v)

            delivered = self.network.broadcast_oneway(
                src=origin,
                category=MessageCategory.WRITE_UPDATE,
                handler=apply,
                payload=(block, bytes(data), new_version),
                destinations=quorum_members,
            )
            if fenced:
                self.epoch_fences += len(fenced)
            applied_ids = {origin} | (set(delivered) - set(fenced))
            if (applied_ids != set(versions)
                    and site.state is not SiteState.FAILED):
                # Members that missed the update -- transient delivery
                # loss or an epoch fence -- cannot be counted toward the
                # write quorum (quorum intersection would otherwise
                # admit a stale read).  If what actually applied -- the
                # origin plus the unfenced delivered members -- still
                # carries a write quorum, the write stands; otherwise it
                # is torn.
                shortfall = self._write_shortfall(applied_ids)
                if shortfall is not None:
                    if self.recorder is not None:
                        self.recorder.torn_write(
                            block, bytes(data), new_version
                        )
                    if fenced:
                        raise StaleEpochError(
                            f"write of block {block} tagged epoch "
                            f"{epoch_tag} was fenced by "
                            f"{sorted(set(fenced))}"
                        )
                    raise QuorumNotReachedError(*shortfall)
            if site.state is SiteState.FAILED:
                # The origin crashed mid-fan-out (fault injection): some
                # quorum members applied the update, some did not, and
                # the local copy never will -- a torn group write.  The
                # higher version at whichever sites took it supersedes
                # stale copies through the ordinary lazy-repair path.
                if self.recorder is not None:
                    self.recorder.torn_write(block, bytes(data), new_version)
                raise SiteDownError(origin, "failed during the write fan-out")
            site.write_block(block, bytes(data), new_version)
            return new_version

    # -- batched operations ---------------------------------------------------

    def read_batch(
        self, origin: SiteId, blocks: Sequence[BlockIndex]
    ) -> Dict[BlockIndex, bytes]:
        """Read a whole batch behind ONE vote-collection round.

        The quorum check covers every block at once (the same voters
        answered for all of them); stale local copies are refreshed with
        one scatter-gather transfer per source site instead of one
        transfer per block.  Per-block semantics -- quorum intersection,
        lazy repair, corruption healing -- are identical to :meth:`read`.
        """
        ordered = list(dict.fromkeys(blocks))
        if not ordered:
            return {}
        site = self.require_origin(origin)
        if site.is_witness:
            raise SiteDownError(origin, "witnesses cannot serve clients")
        with self.meter.record("batch_read"), \
                self._span("read_batch", origin=origin, batch=len(ordered)):
            votes = self._collect_batch_votes(site, ordered)
            shortfall = self._read_shortfall(set(votes))
            if shortfall is not None:
                raise QuorumNotReachedError(*shortfall)
            per_block: Dict[BlockIndex, Dict[SiteId, int]] = {
                b: {s: votes[s][b] for s in votes} for b in ordered
            }
            tops = {b: max(per_block[b].values()) for b in ordered}
            stale = [
                b for b in ordered if votes[origin][b] < tops[b]
            ]
            if stale:
                self._batch_refresh(site, stale, per_block, tops)
                self.lazy_repairs += len(stale)
            out: Dict[BlockIndex, bytes] = {}
            for b in ordered:
                try:
                    out[b] = site.read_block(b)
                except CorruptBlockError:
                    self.note_corruption(origin, b)
                    site.store.quarantine(b, tops[b])
                    self._refresh_from_voters(site, b, per_block[b], tops[b])
                    self.note_heal(origin, b)
                    out[b] = site.read_block(b)
            return out

    def _batch_refresh(
        self,
        site: 'Site',
        stale: Sequence[BlockIndex],
        per_block: Dict[BlockIndex, Dict[SiteId, int]],
        tops: Dict[BlockIndex, int],
    ) -> None:
        """Refresh all stale blocks with one transfer per source site.

        Blocks are grouped by their best current holder; each holder
        ships its group in a single BATCH_BLOCK_TRANSFER.  Blocks whose
        primary copy turns out corrupt (or whose transfer is dropped)
        fall back to the sequential per-block refresh path, preserving
        its quarantine/heal semantics exactly.
        """
        data_ids = set(self._data_ids)
        by_source: Dict[SiteId, List[BlockIndex]] = {}
        for b in stale:
            candidates = sorted(
                s for s, v in per_block[b].items()
                if v == tops[b] and s != site.site_id and s in data_ids
            )
            if not candidates:
                raise NoCurrentDataCopyError(
                    f"version {tops[b]} of block {b} is attested only "
                    "by witnesses; no data copy is reachable"
                )
            by_source.setdefault(candidates[0], []).append(b)

        def deliver(node, payload):
            for index in sorted(payload):
                blob, v = payload[index]
                node.write_block(index, blob, v)

        fallback: List[BlockIndex] = []
        for source_id in sorted(by_source):
            holder = self.site(source_id)
            shipment: Dict[BlockIndex, Tuple[bytes, int]] = {}
            for b in by_source[source_id]:
                try:
                    shipment[b] = (
                        holder.read_block(b), holder.block_version(b)
                    )
                except CorruptBlockError:
                    self.note_corruption(source_id, b)
                    holder.store.quarantine(b)
                    fallback.append(b)
            if not shipment:
                continue
            delivered = self.network.unicast_oneway(
                src=source_id,
                dst=site.site_id,
                category=MessageCategory.BATCH_BLOCK_TRANSFER,
                handler=deliver,
                payload=shipment,
            )
            if not delivered:
                fallback.extend(sorted(shipment))
        for b in fallback:
            self._refresh_from_voters(site, b, per_block[b], tops[b])

    def write_batch(
        self, origin: SiteId, updates: Mapping[BlockIndex, bytes]
    ) -> Dict[BlockIndex, int]:
        """Write a whole batch behind ONE vote round and ONE fan-out.

        Version assignment is per block (each block's quorum maximum
        plus one) and a mid-fan-out origin crash or an insufficient
        applied weight tears *every* block of the batch individually,
        exactly as :meth:`write` tears a single block.  No cross-block
        atomicity is claimed.
        """
        blocks = sorted(updates)
        if not blocks:
            return {}
        site = self.require_origin(origin)
        if site.is_witness:
            raise SiteDownError(origin, "witnesses cannot serve clients")
        with self.meter.record("batch_write"), \
                self._span("write_batch", origin=origin, batch=len(blocks)):
            votes = self._collect_batch_votes(site, blocks)
            shortfall = self._write_shortfall(set(votes))
            if shortfall is not None:
                raise QuorumNotReachedError(*shortfall)
            new_versions = {
                b: max(votes[s][b] for s in votes) + 1 for b in blocks
            }
            payload = {
                b: (bytes(updates[b]), new_versions[b]) for b in blocks
            }
            quorum_members = [s for s in votes if s != origin]
            epoch_tag = self.current_epoch()
            fenced: List[SiteId] = []

            def apply(node, payload):
                if self._epoch_rejects(node, epoch_tag):
                    fenced.append(node.site_id)
                    return
                for index in sorted(payload):
                    blob, v = payload[index]
                    if node.is_witness:
                        node.store.set_version(index, v)
                    else:
                        node.write_block(index, blob, v)

            delivered = self.network.broadcast_oneway(
                src=origin,
                category=MessageCategory.BATCH_WRITE_UPDATE,
                handler=apply,
                payload=payload,
                destinations=quorum_members,
            )
            if fenced:
                self.epoch_fences += len(fenced)
            applied_ids = {origin} | (set(delivered) - set(fenced))
            if (applied_ids != set(votes)
                    and site.state is not SiteState.FAILED):
                shortfall = self._write_shortfall(applied_ids)
                if shortfall is not None:
                    if self.recorder is not None:
                        for b in blocks:
                            self.recorder.torn_write(
                                b, bytes(updates[b]), new_versions[b]
                            )
                    if fenced:
                        raise StaleEpochError(
                            f"batched write of {len(blocks)} blocks "
                            f"tagged epoch {epoch_tag} was fenced by "
                            f"{sorted(set(fenced))}"
                        )
                    raise QuorumNotReachedError(*shortfall)
            if site.state is SiteState.FAILED:
                # Mid-fan-out origin crash: every block of the batch is
                # torn the same way a single-block write would be.
                if self.recorder is not None:
                    for b in blocks:
                        self.recorder.torn_write(
                            b, bytes(updates[b]), new_versions[b]
                        )
                raise SiteDownError(
                    origin, "failed during the batched write fan-out"
                )
            for b in blocks:
                site.write_block(b, bytes(updates[b]), new_versions[b])
            return new_versions

    # -- availability & failure handling -----------------------------------------

    def is_available(self) -> bool:
        """A read quorum of up sites exists (equation 1's event).

        With witnesses, at least one *data* site must also be up; this
        matches read availability under write-frequent workloads (every
        write repairs all operational stale copies in its quorum, so any
        up data site is current).
        """
        operational = [
            s for s in self.sites if s.state is not SiteState.FAILED
        ]
        views = self._joint_views()
        if views is not None:
            ids = {s.site_id for s in operational}
            if not all(v.meets_read(ids) for v in views):
                return False
        else:
            up = [
                self._index_of[s.site_id] for s in operational
                if s.site_id in self._index_of
            ]
            if not self._spec.read_available(up):
                return False
        return any(not s.is_witness for s in operational)

    def on_site_failed(self, site_id: SiteId) -> None:
        self.site(site_id).crash()

    def on_site_repaired(self, site_id: SiteId) -> None:
        """Repair under voting: rejoin immediately, no recovery traffic.

        Stale blocks are refreshed lazily by later reads and writes --
        the quorum intersection property makes that safe.
        """
        site = self.site(site_id)
        site.set_state(SiteState.AVAILABLE)
        self._sync_epoch(site)
        if self._eager_repair:
            self._eager_refresh(site)

    def _eager_refresh(self, site: 'Site') -> None:
        """Ablation baseline: refresh every stale block upon repair."""
        start = self.meter.total
        peers = [
            s for s in self.sites
            if s is not site and s.is_available and not s.is_witness
        ]
        if not peers:
            self._record_recovery(start)
            return
        source = max(peers, key=lambda s: (s.version_total(), -s.site_id))

        def serve(node, payload):
            vector = payload
            stale = vector.stale_relative_to(node.version_vector())
            blocks = {}
            for b in stale:
                try:
                    blocks[b] = (node.read_block(b), node.block_version(b))
                except CorruptBlockError:
                    self.note_corruption(node.site_id, b)
                    node.store.quarantine(b)
            return blocks

        delivered, blocks = self.network.unicast_query(
            src=site.site_id,
            dst=source.site_id,
            request=MessageCategory.VERSION_VECTOR_REQUEST,
            reply=MessageCategory.VERSION_VECTOR_REPLY,
            handler=serve,
            payload=site.version_vector(),
        )
        if delivered:
            for block, (data, version) in sorted(blocks.items()):
                if site.is_witness:
                    site.store.set_version(block, version)
                else:
                    site.write_block(block, data, version)
        self._record_recovery(start)
