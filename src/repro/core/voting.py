"""Majority consensus voting with lazy block recovery (Section 3.1).

The read algorithm (Figure 3) collects votes -- each vote carries the
voter's version number for the requested block and its weight -- and
proceeds only when the gathered weight exceeds the read quorum.  Because
quorum composition guarantees a current copy is present in any quorum, a
stale local copy is simply refreshed from the highest-versioned voter
(one extra block transfer); this *lazy, per-block* recovery is what
block-level replication buys: the scheme never runs a recovery pass when
a site repairs, so voting incurs **no traffic upon recovery** (Section
5.1).

The write algorithm (Figure 4) collects the same votes, takes the maximum
version plus one, and pushes the new block to every site in the quorum,
repairing all operational out-of-date copies as a side effect.

Transmission accounting (Section 5): on a multicast network a read costs
``U`` messages (one vote request plus ``U - 1`` replies; one more if the
local copy was stale) and a write costs ``1 + U`` (votes plus the update
broadcast).  With unique addressing a read costs ``n + U - 2`` (plus one)
and a write ``n + 2U - 3``.  ``U`` is the number of operational sites,
local site included.

An optional *eager repair* mode (``eager_repair=True``) restores the
conventional behaviour of file-level voting schemes -- refreshing every
stale block when a site repairs -- and exists purely as the ablation
baseline for the paper's "no recovery traffic" claim.

**Witnesses.**  Sites flagged ``is_witness`` vote with version numbers
but store no data (Paris, FTCS 1986 -- the paper's reference [10]).
Full-block writes succeed with any quorum (new contents supersede old
ones, so no current copy is needed -- another block-level benefit);
reads additionally require a reachable *data* site holding the quorum's
highest version and raise
:class:`~repro.errors.NoCurrentDataCopyError` otherwise.

**Quorum policies.**  Passing an (RF, R, W)
:class:`~repro.core.policy.QuorumPolicy` replaces the weighted
thresholds with *count-based* ones: a read needs R distinct voters, a
write needs W distinct appliers.  Strict policies (``R + W > RF`` and
``2W > RF``) keep read-latest-write by the same intersection argument
as weighted voting; ``R = 1`` additionally enables a zero-message local
read (strictness then forces ``W = RF``, so a down site observes no
committed writes and its copy is provably current on repair).  Sloppy
policies admit stale reads; the protocol then runs the two classic
mitigations -- hinted handoff (missed updates parked as HINT messages
on fallback sites, replayed on repair) and read repair (a read
observing divergent versions pushes the newest copy to stale voters).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..device.site import Site
    from ..membership.view import View
from ..errors import (
    CorruptBlockError,
    DeviceUnavailableError,
    MembershipError,
    NoCurrentDataCopyError,
    QuorumNotReachedError,
    SiteDownError,
    StaleEpochError,
)
from ..net.message import MessageCategory
from ..net.network import Network
from ..obs.trace import _NULL_SPAN
from ..types import BlockIndex, SchemeName, SiteId, SiteState
from .policy import QuorumPolicy
from .quorum import QuorumSpec
from .protocol import ReplicationProtocol

__all__ = ["VotingProtocol"]


# Module-level message handlers.  Hoisted out of the per-operation
# methods so the hot path does not rebuild a closure object per call;
# everything they need rides in the payload.

def _vote_handler(node, payload):
    """VOTE_REQUEST: answer with the voter's version of the block.

    ``BlockStore.version`` inlined (bounds check + version-dict probe):
    this is the single hottest handler in the repository -- one call
    per voter per read -- and the extra frame is measurable.
    """
    if 0 <= payload < node._num_blocks:
        return node._vget(payload, 0)
    return node.version_of(payload)  # out of range: raise as before


def _batch_vote_handler(node, payload):
    """BATCH_VOTE_REQUEST: one reply mapping every block to a version."""
    vget = node.version_of
    return {b: vget(b) for b in payload}


def _park_hint_handler(node, payload):
    """HINT (parking): stash a missed update durably on a fallback site."""
    node.meta.setdefault("hints", []).append(payload)


def _apply_hint_handler(node, payload):
    """HINT (replay): apply a parked update unless already superseded."""
    _, index, blob, version = payload
    if node.block_version(index) < version:
        node.write_block(index, blob, version)


def _read_repair_handler(node, payload):
    """READ_REPAIR: apply the pushed newest copy unless superseded."""
    index, blob, version = payload
    if node.block_version(index) < version:
        node.write_block(index, blob, version)


def _apply_write_handler(node, payload):
    """WRITE_UPDATE (static group): apply the pushed version.

    The fencing closure in :meth:`VotingProtocol.write` matters only
    once a membership view is installed; without one
    ``_epoch_rejects`` is constantly False, so the static-group
    fan-out shares this handler instead of building a closure (and a
    fenced-list cell) per write.
    """
    index, blob, v = payload
    if node.is_witness:
        node.store.set_version(index, v)
    else:
        node.write_block(index, blob, v)


def _apply_batch_write_handler(node, payload):
    """BATCH_WRITE_UPDATE (static group): apply every pushed version."""
    for index in sorted(payload):
        blob, v = payload[index]
        if node.is_witness:
            node.store.set_version(index, v)
        else:
            node.write_block(index, blob, v)


class VotingProtocol(ReplicationProtocol):
    """Weighted majority consensus voting over a replica group.

    Parameters
    ----------
    sites:
        The replica group.  Site weights must match ``spec.weights``
        positionally.
    network:
        The group's network.
    spec:
        Quorum weights and thresholds; defaults to equal-weight majority
        with the paper's tie-breaking adjustment for even groups.
    eager_repair:
        When True, a repairing site immediately refreshes all its stale
        blocks from a current site (ablation baseline; the paper's
        algorithm leaves repair to later reads and writes).
    policy:
        Optional (RF, R, W) quorum policy.  When set, quorum checks
        become count-based (R distinct voters / W distinct appliers)
        instead of weighted; RF must equal the group size and the group
        may not contain witnesses.  Sloppy policies additionally enable
        hinted handoff and read repair (see
        :class:`~repro.core.policy.QuorumPolicy`).
    """

    def __init__(
        self,
        sites: Sequence['Site'],
        network: Network,
        spec: Optional[QuorumSpec] = None,
        eager_repair: bool = False,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(sites, network)
        if spec is None:
            spec = QuorumSpec.majority(len(sites))
        if spec.num_sites != len(sites):
            raise ValueError(
                f"quorum spec covers {spec.num_sites} sites, "
                f"group has {len(sites)}"
            )
        for index, site in enumerate(self.sites):
            if site.weight != spec.weight_of(index):
                raise ValueError(
                    f"site {site.site_id} weight {site.weight} does not "
                    f"match spec weight {spec.weight_of(index)}"
                )
        if policy is not None:
            if policy.rf != len(sites):
                raise ValueError(
                    f"policy replication factor {policy.rf} does not "
                    f"match the group size {len(sites)}"
                )
            if any(s.is_witness for s in sites):
                raise ValueError(
                    "count-based quorum policies do not support "
                    "witness sites (every replica must store data)"
                )
        self.policy = policy
        self._spec = spec
        self._index_of: Dict[SiteId, int] = {
            site.site_id: i for i, site in enumerate(self.sites)
        }
        self._eager_repair = eager_repair
        self._data_ids = [s.site_id for s in self.sites if not s.is_witness]
        if not self._data_ids:
            raise ValueError("a voting group needs at least one data site")
        #: Number of stale local copies refreshed lazily during reads.
        self.lazy_repairs = 0
        self._refresh_fast_thresholds()

    def _refresh_fast_thresholds(self) -> None:
        """Precompute the integer quorum thresholds of the hot path.

        For count-based (RF, R, W) policies and for unit-weight specs
        the strict-greater float predicate over gathered weight is
        equivalent to an integer compare over the distinct-voter count
        (``n > q`` iff ``n >= floor(q) + 1``), so steady-state
        operations replace ``gathered_weight`` + ``meets_read`` /
        ``meets_write`` with one ``count < need`` test.  The ``need``
        values are None for genuinely weighted specs (including the
        even-group tie-breaker weight), which stay on the float path.
        The float companions preserve the exact
        :class:`QuorumNotReachedError` arguments the slow path raises.
        Recomputed whenever the spec can change (construction and view
        commit).
        """
        policy = self.policy
        spec = self._spec
        if policy is not None:
            self._fast_read_need: Optional[int] = policy.r
            self._fast_write_need: Optional[int] = policy.w
            self._fast_read_quorum = float(policy.r)
            self._fast_write_quorum = float(policy.w)
        elif spec.unit_weights:
            self._fast_read_need = spec.read_count_need
            self._fast_write_need = spec.write_count_need
            self._fast_read_quorum = spec.read_quorum
            self._fast_write_quorum = spec.write_quorum
        else:
            self._fast_read_need = None
            self._fast_write_need = None
            self._fast_read_quorum = 0.0
            self._fast_write_quorum = 0.0

    # -- metadata ---------------------------------------------------------

    @property
    def scheme(self) -> SchemeName:
        return SchemeName.VOTING

    @property
    def spec(self) -> QuorumSpec:
        return self._spec

    @property
    def data_site_ids(self) -> List[SiteId]:
        """Sites that store block contents (non-witnesses)."""
        return list(self._data_ids)

    @property
    def witness_ids(self) -> List[SiteId]:
        """Vote-only sites."""
        return [s for s in self.site_ids if s not in set(self._data_ids)]

    # -- dynamic membership (joint quorums during the window) -----------------

    def install_view(self, view: 'View') -> None:
        """Adopt the initial view; reject unsupported configurations.

        Dynamic membership re-votes members with the majority rule at
        every epoch, so it requires the group to already be a plain
        majority configuration: no witnesses, thresholds at half the
        total weight, and site weights matching the view's votes.
        Count-based (RF, R, W) policies are likewise unsupported: the
        policy pins RF to the group size, which a view change would
        silently invalidate.
        """
        if self.policy is not None:
            raise MembershipError(
                "dynamic membership is not supported with an "
                "(RF, R, W) quorum policy (the policy pins the "
                "replication factor)"
            )
        if any(s.is_witness for s in self.sites):
            raise MembershipError(
                "dynamic membership does not support witness sites"
            )
        half = self._spec.total_weight / 2.0
        if (self._spec.read_quorum != half
                or self._spec.write_quorum != half):
            raise MembershipError(
                "dynamic membership requires majority quorums "
                f"(spec has r={self._spec.read_quorum:g}, "
                f"w={self._spec.write_quorum:g}, total/2={half:g})"
            )
        for site in self.sites:
            if site.weight != view.vote_of(site.site_id):
                raise MembershipError(
                    f"site {site.site_id} weight {site.weight:g} does "
                    f"not match its view vote "
                    f"{view.vote_of(site.site_id):g}"
                )
        super().install_view(view)

    def commit_view_change(self, view: 'View') -> None:
        """Vote reassignment: the committed view defines the new quorums."""
        self._order = list(view.sites)
        for site_id, vote in zip(view.sites, view.votes):
            self._sites[site_id].set_weight(vote)
        self._spec = view.quorum_spec()
        self._index_of = {s: i for i, s in enumerate(view.sites)}
        self._pos_of = {s: i for i, s in enumerate(view.sites)}
        self._data_ids = [
            s.site_id for s in self.sites if not s.is_witness
        ]
        self._refresh_fast_thresholds()
        super().commit_view_change(view)

    def _joint_views(self) -> Optional[Tuple['View', 'View']]:
        """(old, new) while a transition window is open, else None."""
        if self._pending_view is not None:
            return self._view, self._pending_view
        return None

    def _read_shortfall(
        self, voters: set
    ) -> Optional[Tuple[float, float]]:
        """None if ``voters`` form every active read quorum, else the
        (gathered, required) pair of the first view they miss.

        During a transition window the *joint* rule applies: the voters
        must exceed the read threshold of the old AND the new view, so
        a read is guaranteed to intersect the write quorum of the
        latest write no matter which side of the epoch boundary that
        write landed on.

        Under an (RF, R, W) policy the check is count-based: R distinct
        member voters must have answered.
        """
        if self.policy is not None:
            gathered = sum(1 for s in voters if s in self._index_of)
            if gathered < self.policy.r:
                return float(gathered), float(self.policy.r)
            return None
        views = self._joint_views()
        if views is not None:
            for view in views:
                gathered = view.gathered_weight(voters)
                if not gathered > view.read_quorum:
                    return gathered, view.read_quorum
            return None
        gathered = self._spec.gathered_weight(
            self._index_of[s] for s in voters if s in self._index_of
        )
        if not self._spec.meets_read(gathered):
            return gathered, self._spec.read_quorum
        return None

    def _write_shortfall(
        self, voters: set
    ) -> Optional[Tuple[float, float]]:
        """Joint-quorum analogue of :meth:`_read_shortfall` for writes."""
        if self.policy is not None:
            gathered = sum(1 for s in voters if s in self._index_of)
            if gathered < self.policy.w:
                return float(gathered), float(self.policy.w)
            return None
        views = self._joint_views()
        if views is not None:
            for view in views:
                gathered = view.gathered_weight(voters)
                if not gathered > view.write_quorum:
                    return gathered, view.write_quorum
            return None
        gathered = self._spec.gathered_weight(
            self._index_of[s] for s in voters if s in self._index_of
        )
        if not self._spec.meets_write(gathered):
            return gathered, self._spec.write_quorum
        return None

    # -- vote collection -----------------------------------------------------

    def _collect_votes(
        self, origin: 'Site', block: BlockIndex
    ) -> Dict[SiteId, int]:
        """Gather votes for ``block`` from every reachable site.

        Returns a map ``site_id -> version`` over the voters (origin
        included).  During a transition window the broadcast reaches
        the union of both views' members, so the joint quorum checks
        see every reachable voice.
        """
        # Slow-path helper (membership windows, weighted specs); the
        # steady-state read uses the pooled round instead.
        replies: Dict[SiteId, int] = self.network.broadcast_query(  # repro: noqa[RL009]
            origin.site_id,
            request=MessageCategory.VOTE_REQUEST,
            reply=MessageCategory.VOTE_REPLY,
            handler=_vote_handler,
            payload=block,
        )
        # broadcast_query returns a fresh dict per call, so the origin's
        # vote is appended in place rather than after a defensive copy.
        replies[origin.site_id] = origin.block_version(block)
        return replies

    @staticmethod
    def _best_voter(versions: Dict[SiteId, int]) -> SiteId:
        """The voter holding the highest version (lowest id on ties)."""
        top = max(versions.values())
        return min(s for s, v in versions.items() if v == top)

    # -- Figure 3: READ -------------------------------------------------------

    def read(self, origin: SiteId, block: BlockIndex) -> bytes:
        site = self.require_origin(origin)
        if site.is_witness:
            raise SiteDownError(origin, "witnesses cannot serve clients")
        policy = self.policy
        if policy is not None and policy.r == 1:
            return self._read_local(site, block)
        network = self._network
        span = (
            self._span("read", origin=origin, block=block)
            if network._tracer.enabled else _NULL_SPAN
        )
        with self._record_read, span:
            rnd = self._borrow_round()
            try:
                network.broadcast_round(
                    origin,
                    MessageCategory.VOTE_REQUEST,
                    MessageCategory.VOTE_REPLY,
                    _vote_handler,
                    block,
                    rnd,
                )
                mine = site.block_version(block)
                rnd.add(origin, mine)
                # The integer fast path is valid only when every
                # replier is a member the float path would count: no
                # joint-quorum window is open and no joiner has been
                # adopted ahead of the view commit that rebuilds
                # ``_index_of``.
                need = self._fast_read_need
                if (need is not None and self._pending_view is None
                        and len(self._order) == len(self._index_of)):
                    if rnd.count < need:
                        raise QuorumNotReachedError(
                            float(rnd.count), self._fast_read_quorum
                        )
                else:
                    shortfall = self._read_shortfall(rnd.id_set())
                    if shortfall is not None:
                        raise QuorumNotReachedError(*shortfall)
                top = rnd.top
                if mine < top:
                    self._refresh_from_voters(
                        site, block, rnd.as_dict(), top
                    )
                    self.lazy_repairs += 1
                try:
                    data = site.read_block(block)
                except CorruptBlockError:
                    # Quorum composition guarantees a current copy
                    # exists in the quorum; self-heal the local one
                    # from it and retry.
                    self.note_corruption(origin, block)
                    site.store.quarantine(block, top)
                    self._refresh_from_voters(
                        site, block, rnd.as_dict(), top
                    )
                    self.note_heal(origin, block)
                    data = site.read_block(block)
                if policy is not None and policy.read_repair:
                    self._send_read_repairs(
                        site, block, rnd.as_dict(), top, data
                    )
                return data
            finally:
                self._release_round(rnd)

    def _read_local(self, site: 'Site', block: BlockIndex) -> bytes:
        """R = 1: serve the read from the local copy, zero messages.

        For a *strict* policy R = 1 forces W = RF, so every committed
        write reached this site while it was up and a freshly repaired
        site's copy is provably current.  For a *sloppy* policy the
        local copy may be stale -- the history checker witnesses that.
        A corrupt local copy falls back to vote collection to locate
        and pull an intact peer copy (self-healing, as in Figure 3).
        """
        origin = site.site_id
        with self._record_read, \
                self._span("read", origin=origin, block=block, local=True):
            try:
                return site.read_block(block)
            except CorruptBlockError:
                self.note_corruption(origin, block)
                versions = self._collect_votes(site, block)
                top = max(versions.values())
                site.store.quarantine(block, top)
                self._refresh_from_voters(site, block, versions, top)
                self.note_heal(origin, block)
                return site.read_block(block)

    def _send_read_repairs(
        self,
        site: 'Site',
        block: BlockIndex,
        versions: Dict[SiteId, int],
        top: int,
        data: bytes,
    ) -> None:
        """Push the newest copy to the stale voters this read observed.

        Each push is a priced READ_REPAIR unicast applied only if still
        newer on arrival (a concurrent write may have superseded it).
        Costs ride on the read that triggered them.
        """
        for target_id in sorted(versions):
            if target_id == site.site_id or versions[target_id] >= top:
                continue
            if self.network.unicast_oneway(
                src=site.site_id,
                dst=target_id,
                category=MessageCategory.READ_REPAIR,
                handler=_read_repair_handler,
                payload=(block, data, top),
            ):
                self.read_repairs += 1

    def _refresh_from_voters(
        self,
        site: 'Site',
        block: BlockIndex,
        versions: Dict[SiteId, int],
        top: int,
    ) -> None:
        """Pull the current copy of ``block`` from the best intact voter.

        Tries the data voters holding the quorum's highest version in id
        order; a voter whose own copy turns out corrupt is quarantined
        and skipped, as is one whose block transfer is lost in transit.
        Raises :class:`NoCurrentDataCopyError` when only witnesses
        attest ``top`` and :class:`CorruptBlockError` when every data
        copy at ``top`` is corrupt.
        """
        data_ids = set(self._data_ids)
        candidates = sorted(
            s for s, v in versions.items()
            if v == top and s != site.site_id and s in data_ids
        )
        if not candidates:
            raise NoCurrentDataCopyError(
                f"version {top} of block {block} is attested only "
                "by witnesses; no data copy is reachable"
            )
        any_intact = False
        for source in candidates:
            holder = self.site(source)
            try:
                data = holder.read_block(block)
            except CorruptBlockError:
                self.note_corruption(source, block)
                holder.store.quarantine(block)
                continue
            any_intact = True
            if self._push_block(
                source=source, target=site, block=block,
                data=data, version=holder.block_version(block),
            ):
                return
        if any_intact:
            # Intact copies exist but no transfer arrived (transient
            # delivery loss) -- the read fails cleanly rather than
            # serving the stale local copy; a retry can succeed.
            raise DeviceUnavailableError(
                f"could not refresh block {block}: every block "
                "transfer from a current copy was lost"
            )
        raise CorruptBlockError(
            block, site.site_id,
            detail=f"every reachable copy at version {top} is corrupt",
        )

    def _push_block(
        self,
        source: SiteId,
        target: 'Site',
        block: BlockIndex,
        data: bytes,
        version: int,
    ) -> bool:
        """The highest-versioned voter pushes the block to the reader.

        The vote request already carried the reader's version number, so
        a single block transfer suffices (the "+1" of Section 5.1).
        Returns whether the transfer was actually delivered.
        """

        def deliver(node, payload):
            index, blob, v = payload
            node.write_block(index, blob, v)

        return self.network.unicast_oneway(
            src=source,
            dst=target.site_id,
            category=MessageCategory.BLOCK_TRANSFER,
            handler=deliver,
            payload=(block, data, version),
        )

    # -- Figure 4: WRITE -----------------------------------------------------

    def write(self, origin: SiteId, block: BlockIndex, data: bytes) -> int:
        site = self.require_origin(origin)
        if site.is_witness:
            raise SiteDownError(origin, "witnesses cannot serve clients")
        network = self._network
        span = (
            self._span("write", origin=origin, block=block)
            if network._tracer.enabled else _NULL_SPAN
        )
        with self._record_write, span:
            rnd = self._borrow_round()
            try:
                network.broadcast_round(
                    origin,
                    MessageCategory.VOTE_REQUEST,
                    MessageCategory.VOTE_REPLY,
                    _vote_handler,
                    block,
                    rnd,
                )
                mine = site.block_version(block)
                rnd.add(origin, mine)
                count = rnd.count
                # Same fast-path validity guard as :meth:`read`.
                need = self._fast_write_need
                if (need is not None and self._pending_view is None
                        and len(self._order) == len(self._index_of)):
                    if count < need:
                        raise QuorumNotReachedError(
                            float(count), self._fast_write_quorum
                        )
                else:
                    shortfall = self._write_shortfall(rnd.id_set())
                    if shortfall is not None:
                        raise QuorumNotReachedError(*shortfall)
                new_version = rnd.top + 1
                # Peer voters in arrival order (the origin's own vote
                # was appended last), matching the old reply-dict
                # iteration order exactly.
                quorum_members = rnd.ids[:count - 1]
                epoch_tag = self.current_epoch()
                blob = bytes(data)
                if self._view is None:
                    # Static group: _epoch_rejects is constantly False,
                    # so the fan-out shares the module-level handler
                    # instead of building a fencing closure per write.
                    fenced = ()
                    delivered = network.broadcast_oneway(
                        src=origin,
                        category=MessageCategory.WRITE_UPDATE,
                        handler=_apply_write_handler,
                        payload=(block, blob, new_version),
                        destinations=quorum_members,
                    )
                else:
                    fenced = []

                    def apply(node, payload):
                        if self._epoch_rejects(node, epoch_tag):
                            # The epoch advanced under this fan-out (a
                            # view change committed between vote
                            # collection and delivery); the member
                            # refuses the stale-tagged update rather
                            # than apply it under quorums that no
                            # longer hold.
                            fenced.append(node.site_id)
                            return
                        index, payload_blob, v = payload
                        if node.is_witness:
                            node.store.set_version(index, v)
                        else:
                            node.write_block(index, payload_blob, v)

                    delivered = network.broadcast_oneway(
                        src=origin,
                        category=MessageCategory.WRITE_UPDATE,
                        handler=apply,
                        payload=(block, blob, new_version),
                        destinations=quorum_members,
                    )
                if fenced:
                    self.epoch_fences += len(fenced)
                if len(delivered) != count - 1 or fenced:
                    # Members that missed the update -- transient
                    # delivery loss or an epoch fence -- cannot be
                    # counted toward the write quorum (quorum
                    # intersection would otherwise admit a stale read).
                    # If what actually applied -- the origin plus the
                    # unfenced delivered members -- still carries a
                    # write quorum, the write stands; otherwise it is
                    # torn.
                    applied_ids = {origin} | (set(delivered) - set(fenced))
                    if (applied_ids != rnd.id_set()
                            and site.state is not SiteState.FAILED):
                        shortfall = self._write_shortfall(applied_ids)
                        if shortfall is not None:
                            if self.recorder is not None:
                                self.recorder.torn_write(
                                    block, blob, new_version
                                )
                            if fenced:
                                raise StaleEpochError(
                                    f"write of block {block} tagged epoch "
                                    f"{epoch_tag} was fenced by "
                                    f"{sorted(set(fenced))}"
                                )
                            raise QuorumNotReachedError(*shortfall)
                if site.state is SiteState.FAILED:
                    # The origin crashed mid-fan-out (fault injection):
                    # some quorum members applied the update, some did
                    # not, and the local copy never will -- a torn group
                    # write.  The higher version at whichever sites took
                    # it supersedes stale copies through the ordinary
                    # lazy-repair path.
                    if self.recorder is not None:
                        self.recorder.torn_write(block, blob, new_version)
                    raise SiteDownError(
                        origin, "failed during the write fan-out"
                    )
                site.write_block(block, blob, new_version)
                if self.policy is not None and self.policy.hinted_handoff:
                    applied_ids = {origin} | (set(delivered) - set(fenced))
                    self._park_hints(
                        site, applied_ids, block, blob, new_version
                    )
                return new_version
            finally:
                self._release_round(rnd)

    def _park_hints(
        self,
        origin_site: 'Site',
        applied_ids: set,
        block: BlockIndex,
        data: bytes,
        version: int,
    ) -> None:
        """Park a committed write's missed updates for down members.

        Each FAILED member's update is stashed as a hint
        ``(owner, block, data, version)`` on a deterministic fallback
        chosen among the sites that applied the write (owner id modulo
        the fallback count), to be replayed when the owner repairs.
        Parking on the origin itself is a local durable append (no
        message); any other fallback is reached with a priced HINT
        unicast whose cost rides on the write.
        """
        fallbacks = sorted(applied_ids)
        for member_id in self._order:
            if member_id in applied_ids:
                continue
            if self.site(member_id).state is not SiteState.FAILED:
                # An up member that merely missed the delivery is
                # reachable; ordinary lazy repair covers it.
                continue
            holder_id = fallbacks[member_id % len(fallbacks)]
            hint = (member_id, block, data, version)
            if holder_id == origin_site.site_id:
                origin_site.meta.setdefault("hints", []).append(hint)
                self.hints_parked += 1
            elif self.network.unicast_oneway(
                src=origin_site.site_id,
                dst=holder_id,
                category=MessageCategory.HINT,
                handler=_park_hint_handler,
                payload=hint,
            ):
                self.hints_parked += 1

    # -- batched operations ---------------------------------------------------

    def read_batch(
        self, origin: SiteId, blocks: Sequence[BlockIndex]
    ) -> Dict[BlockIndex, bytes]:
        """Read a whole batch behind ONE vote-collection round.

        The quorum check covers every block at once (the same voters
        answered for all of them); stale local copies are refreshed with
        one scatter-gather transfer per source site instead of one
        transfer per block.  Per-block semantics -- quorum intersection,
        lazy repair, corruption healing -- are identical to :meth:`read`.
        """
        ordered = list(dict.fromkeys(blocks))
        if not ordered:
            return {}
        site = self.require_origin(origin)
        if site.is_witness:
            raise SiteDownError(origin, "witnesses cannot serve clients")
        network = self._network
        span = (
            self._span("read_batch", origin=origin, batch=len(ordered))
            if network._tracer.enabled else _NULL_SPAN
        )
        with self._record_batch_read, span:
            rnd = self._borrow_round()
            try:
                network.broadcast_round(
                    origin,
                    MessageCategory.BATCH_VOTE_REQUEST,
                    MessageCategory.BATCH_VOTE_REPLY,
                    _batch_vote_handler,
                    tuple(ordered),
                    rnd,
                )
                mine = {b: site.block_version(b) for b in ordered}
                rnd.add(origin, mine)
                # Same fast-path validity guard as :meth:`read`.
                need = self._fast_read_need
                if (need is not None and self._pending_view is None
                        and len(self._order) == len(self._index_of)):
                    if rnd.count < need:
                        raise QuorumNotReachedError(
                            float(rnd.count), self._fast_read_quorum
                        )
                else:
                    shortfall = self._read_shortfall(rnd.id_set())
                    if shortfall is not None:
                        raise QuorumNotReachedError(*shortfall)
                ids = rnd.ids
                values = rnd.values
                count = rnd.count
                tops: Dict[BlockIndex, int] = {}
                for b in ordered:
                    top = 0
                    for k in range(count):
                        v = values[k][b]
                        if v > top:
                            top = v
                    tops[b] = top
                # Per-block voter maps are materialized lazily: most
                # blocks of a batch are typically current everywhere,
                # and only the stale/corrupt ones need the
                # site -> version breakdown.
                per_block: Dict[BlockIndex, Dict[SiteId, int]] = {}  # repro: noqa[RL009] -- lazy, stale blocks only

                def versions_of(b: BlockIndex) -> Dict[SiteId, int]:
                    found = per_block.get(b)
                    if found is None:
                        found = {
                            ids[k]: values[k][b] for k in range(count)
                        }
                        per_block[b] = found
                    return found

                stale = [b for b in ordered if mine[b] < tops[b]]
                if stale:
                    self._batch_refresh(
                        site, stale,
                        {b: versions_of(b) for b in stale}, tops,
                    )
                    self.lazy_repairs += len(stale)
                out: Dict[BlockIndex, bytes] = {}
                for b in ordered:
                    try:
                        out[b] = site.read_block(b)
                    except CorruptBlockError:
                        self.note_corruption(origin, b)
                        site.store.quarantine(b, tops[b])
                        self._refresh_from_voters(
                            site, b, versions_of(b), tops[b]
                        )
                        self.note_heal(origin, b)
                        out[b] = site.read_block(b)
                return out
            finally:
                self._release_round(rnd)

    def _batch_refresh(
        self,
        site: 'Site',
        stale: Sequence[BlockIndex],
        per_block: Dict[BlockIndex, Dict[SiteId, int]],
        tops: Dict[BlockIndex, int],
    ) -> None:
        """Refresh all stale blocks with one transfer per source site.

        Blocks are grouped by their best current holder; each holder
        ships its group in a single BATCH_BLOCK_TRANSFER.  Blocks whose
        primary copy turns out corrupt (or whose transfer is dropped)
        fall back to the sequential per-block refresh path, preserving
        its quarantine/heal semantics exactly.
        """
        data_ids = set(self._data_ids)
        by_source: Dict[SiteId, List[BlockIndex]] = {}  # repro: noqa[RL009] -- repair dispatch, cold
        for b in stale:
            candidates = sorted(
                s for s, v in per_block[b].items()
                if v == tops[b] and s != site.site_id and s in data_ids
            )
            if not candidates:
                raise NoCurrentDataCopyError(
                    f"version {tops[b]} of block {b} is attested only "
                    "by witnesses; no data copy is reachable"
                )
            by_source.setdefault(candidates[0], []).append(b)

        def deliver(node, payload):
            for index in sorted(payload):
                blob, v = payload[index]
                node.write_block(index, blob, v)

        fallback: List[BlockIndex] = []
        for source_id in sorted(by_source):
            holder = self.site(source_id)
            shipment: Dict[BlockIndex, Tuple[bytes, int]] = {}
            for b in by_source[source_id]:
                try:
                    shipment[b] = (
                        holder.read_block(b), holder.block_version(b)
                    )
                except CorruptBlockError:
                    self.note_corruption(source_id, b)
                    holder.store.quarantine(b)
                    fallback.append(b)
            if not shipment:
                continue
            delivered = self.network.unicast_oneway(
                src=source_id,
                dst=site.site_id,
                category=MessageCategory.BATCH_BLOCK_TRANSFER,
                handler=deliver,
                payload=shipment,
            )
            if not delivered:
                fallback.extend(sorted(shipment))
        for b in fallback:
            self._refresh_from_voters(site, b, per_block[b], tops[b])

    def write_batch(
        self, origin: SiteId, updates: Mapping[BlockIndex, bytes]
    ) -> Dict[BlockIndex, int]:
        """Write a whole batch behind ONE vote round and ONE fan-out.

        Version assignment is per block (each block's quorum maximum
        plus one) and a mid-fan-out origin crash or an insufficient
        applied weight tears *every* block of the batch individually,
        exactly as :meth:`write` tears a single block.  No cross-block
        atomicity is claimed.
        """
        blocks = sorted(updates)
        if not blocks:
            return {}
        site = self.require_origin(origin)
        if site.is_witness:
            raise SiteDownError(origin, "witnesses cannot serve clients")
        network = self._network
        span = (
            self._span("write_batch", origin=origin, batch=len(blocks))
            if network._tracer.enabled else _NULL_SPAN
        )
        with self._record_batch_write, span:
            rnd = self._borrow_round()
            try:
                network.broadcast_round(
                    origin,
                    MessageCategory.BATCH_VOTE_REQUEST,
                    MessageCategory.BATCH_VOTE_REPLY,
                    _batch_vote_handler,
                    tuple(blocks),
                    rnd,
                )
                mine = {b: site.block_version(b) for b in blocks}
                rnd.add(origin, mine)
                count = rnd.count
                # Same fast-path validity guard as :meth:`read`.
                need = self._fast_write_need
                if (need is not None and self._pending_view is None
                        and len(self._order) == len(self._index_of)):
                    if count < need:
                        raise QuorumNotReachedError(
                            float(count), self._fast_write_quorum
                        )
                else:
                    shortfall = self._write_shortfall(rnd.id_set())
                    if shortfall is not None:
                        raise QuorumNotReachedError(*shortfall)
                values = rnd.values
                new_versions: Dict[BlockIndex, int] = {}
                for b in blocks:
                    top = 0
                    for k in range(count):
                        v = values[k][b]
                        if v > top:
                            top = v
                    new_versions[b] = top + 1
                payload = {
                    b: (bytes(updates[b]), new_versions[b]) for b in blocks
                }
                quorum_members = rnd.ids[:count - 1]
                epoch_tag = self.current_epoch()
                if self._view is None:
                    # Static group: shares the module-level handler (see
                    # :meth:`write`).
                    fenced = ()
                    delivered = network.broadcast_oneway(
                        src=origin,
                        category=MessageCategory.BATCH_WRITE_UPDATE,
                        handler=_apply_batch_write_handler,
                        payload=payload,
                        destinations=quorum_members,
                    )
                else:
                    fenced = []

                    def apply(node, payload):
                        if self._epoch_rejects(node, epoch_tag):
                            fenced.append(node.site_id)
                            return
                        for index in sorted(payload):
                            blob, v = payload[index]
                            if node.is_witness:
                                node.store.set_version(index, v)
                            else:
                                node.write_block(index, blob, v)

                    delivered = network.broadcast_oneway(
                        src=origin,
                        category=MessageCategory.BATCH_WRITE_UPDATE,
                        handler=apply,
                        payload=payload,
                        destinations=quorum_members,
                    )
                if fenced:
                    self.epoch_fences += len(fenced)
                if len(delivered) != count - 1 or fenced:
                    applied_ids = {origin} | (set(delivered) - set(fenced))
                    if (applied_ids != rnd.id_set()
                            and site.state is not SiteState.FAILED):
                        shortfall = self._write_shortfall(applied_ids)
                        if shortfall is not None:
                            if self.recorder is not None:
                                for b in blocks:
                                    self.recorder.torn_write(
                                        b, bytes(updates[b]),
                                        new_versions[b],
                                    )
                            if fenced:
                                raise StaleEpochError(
                                    f"batched write of {len(blocks)} "
                                    f"blocks tagged epoch {epoch_tag} "
                                    f"was fenced by "
                                    f"{sorted(set(fenced))}"
                                )
                            raise QuorumNotReachedError(*shortfall)
                if site.state is SiteState.FAILED:
                    # Mid-fan-out origin crash: every block of the batch
                    # is torn the same way a single-block write would be.
                    if self.recorder is not None:
                        for b in blocks:
                            self.recorder.torn_write(
                                b, bytes(updates[b]), new_versions[b]
                            )
                    raise SiteDownError(
                        origin, "failed during the batched write fan-out"
                    )
                for b in blocks:
                    site.write_block(b, bytes(updates[b]), new_versions[b])
                return new_versions
            finally:
                self._release_round(rnd)

    # -- availability & failure handling -----------------------------------------

    def is_available(self) -> bool:
        """A read quorum of up sites exists (equation 1's event).

        With witnesses, at least one *data* site must also be up; this
        matches read availability under write-frequent workloads (every
        write repairs all operational stale copies in its quorum, so any
        up data site is current).
        """
        operational = [
            s for s in self.sites if s.state is not SiteState.FAILED
        ]
        if self.policy is not None:
            # Count-based: R operational replicas can serve reads (the
            # group has no witnesses, so any of them is a data site).
            return len(operational) >= self.policy.r
        views = self._joint_views()
        if views is not None:
            ids = {s.site_id for s in operational}
            if not all(v.meets_read(ids) for v in views):
                return False
        else:
            up = [
                self._index_of[s.site_id] for s in operational
                if s.site_id in self._index_of
            ]
            if not self._spec.read_available(up):
                return False
        return any(not s.is_witness for s in operational)

    def on_site_failed(self, site_id: SiteId) -> None:
        self.site(site_id).crash()

    def on_site_repaired(self, site_id: SiteId) -> None:
        """Repair under voting: rejoin immediately, no recovery traffic.

        Stale blocks are refreshed lazily by later reads and writes --
        the quorum intersection property makes that safe.
        """
        site = self.site(site_id)
        site.set_state(SiteState.AVAILABLE)
        self._sync_epoch(site)
        if self.policy is not None and self.policy.hinted_handoff:
            self._replay_hints(site)
        if self._eager_repair:
            self._eager_refresh(site)

    def _replay_hints(self, target: 'Site') -> None:
        """Deliver the hints parked for a freshly repaired site.

        Every operational fallback replays its hints owned by
        ``target`` as priced HINT unicasts, applied only if still newer
        than the owner's copy.  Delivered hints are dropped; a hint
        whose replay is lost in transit stays parked for the owner's
        next repair.  Replay traffic is attributed to recovery.
        """
        start = self.meter.total
        for holder in self.operational_sites():
            if holder.site_id == target.site_id:
                continue
            hints = holder.meta.get("hints")
            if not hints:
                continue
            keep = []
            for hint in hints:
                if hint[0] != target.site_id:
                    keep.append(hint)
                    continue
                if self.network.unicast_oneway(
                    src=holder.site_id,
                    dst=target.site_id,
                    category=MessageCategory.HINT,
                    handler=_apply_hint_handler,
                    payload=hint,
                ):
                    self.hints_replayed += 1
                else:
                    keep.append(hint)
            holder.meta["hints"] = keep
        if self.meter.total != start:
            self._record_recovery(start)

    def _eager_refresh(self, site: 'Site') -> None:
        """Ablation baseline: refresh every stale block upon repair."""
        start = self.meter.total
        peers = [
            s for s in self.sites
            if s is not site and s.is_available and not s.is_witness
        ]
        if not peers:
            self._record_recovery(start)
            return
        source = max(peers, key=lambda s: (s.version_total(), -s.site_id))

        def serve(node, payload):
            vector = payload
            stale = vector.stale_relative_to(node.version_vector())
            blocks = {}
            for b in stale:
                try:
                    blocks[b] = (node.read_block(b), node.block_version(b))
                except CorruptBlockError:
                    self.note_corruption(node.site_id, b)
                    node.store.quarantine(b)
            return blocks

        delivered, blocks = self.network.unicast_query(
            src=site.site_id,
            dst=source.site_id,
            request=MessageCategory.VERSION_VECTOR_REQUEST,
            reply=MessageCategory.VERSION_VECTOR_REPLY,
            handler=serve,
            payload=site.version_vector(),
        )
        if delivered:
            for block, (data, version) in sorted(blocks.items()):
                if site.is_witness:
                    site.store.set_version(block, version)
                else:
                    site.write_block(block, data, version)
        self._record_recovery(start)
