"""Exception hierarchy for the reliable-device reproduction.

Every exception raised by this package derives from :class:`ReproError`,
so callers can catch one type at the API boundary.  The hierarchy mirrors
the package layout: device errors, protocol errors, network errors,
file-system errors, simulation errors and analysis errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Device layer
# ---------------------------------------------------------------------------


class DeviceError(ReproError):
    """Base class for block-device errors."""


class BlockOutOfRangeError(DeviceError):
    """A block index fell outside ``[0, num_blocks)``."""

    def __init__(self, index: int, num_blocks: int) -> None:
        super().__init__(f"block index {index} out of range [0, {num_blocks})")
        self.index = index
        self.num_blocks = num_blocks


class BlockSizeError(DeviceError):
    """A write supplied data whose length differs from the block size."""

    def __init__(self, got: int, expected: int) -> None:
        super().__init__(f"block payload of {got} bytes, expected {expected}")
        self.got = got
        self.expected = expected


class DeviceUnavailableError(DeviceError):
    """The replicated device cannot serve the request right now.

    Raised by the voting protocol when no quorum is reachable and by the
    available-copy protocols when no available copy exists (e.g. during
    recovery from a total failure).
    """


class CorruptBlockError(DeviceError):
    """A block's contents failed checksum verification.

    Raised at read time when stable storage returns data that does not
    match the checksum recorded at write time (bit rot / silent
    corruption), or when the only reachable copies of a block are
    quarantined.  The fail-stop model of the paper excludes this failure
    mode; the fault-injection subsystem adds it back.
    """

    def __init__(self, index: int, site_id: "int | None" = None,
                 detail: str = "") -> None:
        where = f" at site {site_id}" if site_id is not None else ""
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"block {index}{where} failed checksum verification{suffix}"
        )
        self.index = index
        self.site_id = site_id


class ReadOnlyDeviceError(DeviceError):
    """The device has degraded to read-only mode.

    A :class:`~repro.device.reliable.ReliableDevice` configured with
    ``degrade_to_read_only=True`` stops accepting writes after a write
    exhausts its retry budget without reaching a quorum / available
    copy; reads continue to be served.
    """


class SiteDownError(DeviceError):
    """An operation was initiated at (or addressed to) a failed site."""

    def __init__(self, site_id: int, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(f"site {site_id} is not operational{suffix}")
        self.site_id = site_id


# ---------------------------------------------------------------------------
# Consistency protocols
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for consistency-control protocol errors."""


class QuorumNotReachedError(DeviceUnavailableError, ProtocolError):
    """Voting could not assemble the required quorum of weighted votes."""

    def __init__(self, gathered: float, required: float) -> None:
        super().__init__(
            f"gathered weight {gathered:g} does not exceed quorum {required:g}"
        )
        self.gathered = gathered
        self.required = required


class NoAvailableCopyError(DeviceUnavailableError, ProtocolError):
    """No site currently holds an *available* copy of the blocks."""


class NoCurrentDataCopyError(DeviceUnavailableError, ProtocolError):
    """A quorum exists but no reachable *data* site holds the current
    version of the requested block.

    Only possible in voting configurations with witnesses: the quorum's
    highest version number can be contributed by a witness, which holds
    no block contents to read from.  Full-block *writes* still succeed
    in this situation (the new version supersedes the old contents), a
    block-level-replication benefit."""


class RecoveryBlockedError(ProtocolError):
    """A comatose site cannot complete recovery yet.

    For the available-copy scheme this means not every member of the
    closure of the was-available set has recovered; for the naive scheme
    it means not every site has recovered.
    """


class QuorumSpecError(ProtocolError):
    """A quorum specification violated the safety constraints.

    Weighted voting requires ``read_quorum + write_quorum >= total_weight``
    and ``2 * write_quorum >= total_weight`` so that any read quorum
    intersects any write quorum and any two write quorums intersect.
    """


class QuorumPolicyError(QuorumSpecError):
    """An (RF, R, W) quorum policy violated its constraints.

    Raised for structurally impossible policies (R or W outside
    ``[1, RF]``) and for *sloppy* policies -- ``R + W <= RF`` or
    ``2W <= RF`` -- requested without the explicit ``allow_sloppy``
    escape hatch.  Sloppy policies trade read-latest-write for
    availability; demanding the flag keeps that trade a deliberate
    decision rather than an arithmetic accident.
    """


class MembershipError(ProtocolError):
    """An invalid reconfiguration of the replica group was requested.

    Raised by :mod:`repro.membership` for structurally impossible view
    changes: adopting a site that is already a member, expelling a
    non-member, opening a view change while another is in flight, or
    reconfiguring a group whose scheme cannot support it (e.g. a voting
    group with witnesses or non-majority quorums).
    """


class StaleEpochError(DeviceUnavailableError, ProtocolError):
    """A write fan-out straddled an epoch boundary and was fenced.

    Sites that have adopted a newer membership epoch reject in-flight
    updates tagged with an older one; when the rejections leave the
    fan-out short of its (joint) quorum the write is torn and this is
    raised.  It derives from :class:`DeviceUnavailableError` so the
    reliable device's retry policy re-issues the operation under the
    new epoch instead of failing it.
    """


# ---------------------------------------------------------------------------
# Network layer
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network errors."""


class UnknownSiteError(NetworkError):
    """A message was addressed to a site the network does not know."""

    def __init__(self, site_id: int) -> None:
        super().__init__(f"site {site_id} is not registered with the network")
        self.site_id = site_id


class AccountingError(NetworkError, RuntimeError):
    """Per-operation traffic attribution was used incorrectly.

    Raised by :meth:`repro.net.traffic.TrafficMeter.record` on nested
    recording, which would double-book transmissions and skew the
    per-operation means of Figures 11-12.  Also a ``RuntimeError`` for
    backward compatibility with callers that predate the hierarchy.
    """


# ---------------------------------------------------------------------------
# File system
# ---------------------------------------------------------------------------


class FileSystemError(ReproError):
    """Base class for errors raised by :mod:`repro.fs`."""


class FSFormatError(FileSystemError):
    """The on-device data does not look like a valid file system."""


class FileNotFoundFSError(FileSystemError):
    """A path component does not exist."""


class FileExistsFSError(FileSystemError):
    """Attempt to create a name that already exists."""


class NotADirectoryFSError(FileSystemError):
    """A non-directory appeared where a directory was required."""


class IsADirectoryFSError(FileSystemError):
    """A directory appeared where a regular file was required."""


class DirectoryNotEmptyFSError(FileSystemError):
    """``rmdir`` was applied to a non-empty directory."""


class NoSpaceFSError(FileSystemError):
    """The device ran out of free blocks or inodes."""


class InvalidPathFSError(FileSystemError):
    """A path was empty, malformed, or contained an over-long name."""


class FileTooLargeFSError(FileSystemError):
    """A write would exceed the maximum file size the inode can map."""


# ---------------------------------------------------------------------------
# Simulation and analysis
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


class StatSealedError(SimulationError, RuntimeError):
    """A finalized time-weighted statistic was updated or re-finalized.

    Integrating past the declared end of a run would corrupt the
    availability integral; the stat raises instead of silently
    extending.  Also a ``RuntimeError`` for backward compatibility with
    callers that predate the hierarchy.
    """


class AnalysisError(ReproError):
    """Base class for analytic-model errors (bad parameters, etc.)."""


class CensoredEstimateError(AnalysisError):
    """Too many Monte-Carlo episodes were censored to trust the estimate.

    Raised when the fraction of episodes whose horizon expired before
    the observed event exceeds the caller's threshold: averaging only
    the uncensored episodes would bias the estimate (e.g. MTTF
    downward, because exactly the longest-lived episodes are dropped).
    """

    def __init__(
        self, censored: int, episodes: int, threshold: float
    ) -> None:
        fraction = censored / episodes if episodes else 1.0
        super().__init__(
            f"{censored} of {episodes} episodes censored "
            f"({fraction:.1%} > threshold {threshold:.1%}); raise the "
            "horizon or the threshold"
        )
        self.censored = censored
        self.episodes = episodes
        self.threshold = threshold


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------


class ExecutionError(ReproError):
    """Misconfiguration of the parallel execution engine."""
