"""Command-line interface.

Subcommands::

    python -m repro list                      # enumerate experiments
    python -m repro run figure-9              # regenerate one experiment
    python -m repro availability -n 3 --rho 0.05
    python -m repro mttf -n 3 --rho 0.05
    python -m repro trace generate --count 1000 > workload.trace
    python -m repro trace stats workload.trace
    python -m repro simulate --scheme naive-available-copy -n 3 \\
        --rho 0.05 --horizon 100000 --seed 7
    python -m repro simulate --scheme voting -n 5 --replications 8 --jobs 4
    python -m repro chaos --campaign 8 --jobs 4
    python -m repro chaos --reconfigure    # view changes under fire
    python -m repro experiments --jobs 4    # every experiment, in parallel

``run`` prints the same rows/series the paper's figure reports;
``availability`` / ``mttf`` / ``size`` answer planning questions from
the analytic models; ``trace`` generates and inspects workload traces;
``simulate`` runs the discrete-event simulator and compares the measured
availability and traffic with the analytic models.

``--jobs N`` fans independent seeded runs out over N worker processes
via :mod:`repro.exec`; seeds derive from the run index, so any jobs
value reports identical numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import scheme_availability, traffic_model
from .device import ClusterConfig, ReplicatedCluster
from .experiments import EXPERIMENTS, run_experiment
from .types import AddressingMode, SchemeName
from .workload import OpKind, WorkloadRunner, WorkloadSpec

__all__ = ["main", "build_parser"]


#: Extra accepted spellings for each scheme.
_SCHEME_ALIASES = {
    "voting": SchemeName.VOTING,
    "mcv": SchemeName.VOTING,
    "ac": SchemeName.AVAILABLE_COPY,
    "nac": SchemeName.NAIVE_AVAILABLE_COPY,
    "naive": SchemeName.NAIVE_AVAILABLE_COPY,
}


def _scheme(value: str) -> SchemeName:
    lowered = value.lower()
    if lowered in _SCHEME_ALIASES:
        return _SCHEME_ALIASES[lowered]
    for scheme in SchemeName:
        if lowered == scheme.value:
            return scheme
    choices = ", ".join(s.value for s in SchemeName)
    raise argparse.ArgumentTypeError(
        f"unknown scheme {value!r}; choose from: {choices}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Block-Level Consistency of Replicated Files (ICDCS 1987) "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run one experiment and print it")
    run.add_argument("experiment", help="experiment id (see `repro list`)")

    experiments = sub.add_parser(
        "experiments",
        help="run every registered experiment (optionally in parallel)",
    )
    experiments.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (0 = one per CPU; default 1, serial)",
    )

    avail = sub.add_parser(
        "availability", help="analytic availability of the three schemes"
    )
    avail.add_argument("-n", "--copies", type=int, default=3,
                       help="number of copies (default 3)")
    avail.add_argument("--rho", type=float, default=0.05,
                       help="failure-to-repair ratio (default 0.05)")

    size = sub.add_parser(
        "size", help="copies needed per scheme for a target availability"
    )
    size.add_argument("--rho", type=float, default=0.05)
    size.add_argument("--target", type=float, default=0.9999)

    mttf = sub.add_parser(
        "mttf", help="reliability: mean time to failure per scheme"
    )
    mttf.add_argument("-n", "--copies", type=int, default=3)
    mttf.add_argument("--rho", type=float, default=0.05)

    trace = sub.add_parser("trace", help="generate or inspect workload traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    generate = trace_sub.add_parser("generate",
                                    help="emit a synthetic trace to stdout")
    generate.add_argument("--count", type=int, default=1000)
    generate.add_argument("--blocks", type=int, default=128)
    generate.add_argument("--ratio", type=float, default=2.5,
                          help="reads per write (default 2.5)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--distribution", choices=["uniform", "zipf", "sequential"],
        default="uniform",
    )
    stats = trace_sub.add_parser("stats", help="summarise a trace file")
    stats.add_argument("path", help="trace file to read")

    simulate = sub.add_parser(
        "simulate", help="simulate a replica group and compare with theory"
    )
    simulate.add_argument("--scheme", type=_scheme, required=True,
                          help="voting | available-copy | "
                               "naive-available-copy (or MCV/AC/NAC)")
    simulate.add_argument("-n", "--sites", type=int, default=3)
    simulate.add_argument("--rho", type=float, default=0.05)
    simulate.add_argument("--horizon", type=float, default=100_000.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--op-rate", type=float, default=1.0,
                          help="workload operations per time unit")
    simulate.add_argument("--read-write-ratio", type=float, default=2.5)
    simulate.add_argument(
        "--addressing",
        choices=[m.value for m in AddressingMode],
        default=AddressingMode.MULTICAST.value,
    )
    simulate.add_argument("--trace", metavar="FILE", default=None,
                          help="write span-level JSON lines to FILE")
    simulate.add_argument(
        "--replications", type=int, default=1, metavar="R",
        help="independent seeded runs to aggregate (default 1)",
    )
    simulate.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the replications "
             "(0 = one per CPU; default 1, serial)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection run with consistency checking",
    )
    chaos.add_argument("--scheme", type=_scheme, default=None,
                       help="one scheme (default: all three)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("-n", "--sites", type=int, default=5)
    chaos.add_argument("--blocks", type=int, default=24)
    chaos.add_argument("--operations", type=int, default=400)
    chaos.add_argument("--fault-rate", type=float, default=0.30,
                       help="per-step fault probability (default 0.30)")
    chaos.add_argument("--max-attempts", type=int, default=3,
                       help="device retry budget per operation")
    chaos.add_argument("--verbose", action="store_true",
                       help="also print the history event counts")
    chaos.add_argument("--trace", metavar="FILE", default=None,
                       help="write span-level JSON lines to FILE")
    chaos.add_argument(
        "--reconfigure", action="store_true",
        help="exercise dynamic membership: planned view changes "
             "(add/remove/replace) and crash-triggered replacements "
             "while the workload runs",
    )
    chaos.add_argument(
        "--reconfigure-rate", type=float, default=None, metavar="P",
        help="per-step probability of opening a planned view change "
             "(implies --reconfigure; default 0.08)",
    )
    chaos.add_argument(
        "--spare-sites", type=int, default=2, metavar="S",
        help="fresh sites available to join the group (default 2)",
    )
    chaos.add_argument(
        "--no-fencing", action="store_true",
        help="disable epoch fencing of in-flight writes (ablation: "
             "exposes the quorum-drift hazard)",
    )
    chaos.add_argument(
        "--policy", metavar="RF:R:W", default=None,
        help="run under an (RF, R, W) quorum policy (e.g. 5:3:3); "
             "sloppy combinations (R+W<=RF or 2W<=RF) are accepted and "
             "checked with the staleness-witnessing checker; RF "
             "overrides --sites",
    )
    chaos.add_argument(
        "--no-hinted-handoff", action="store_true",
        help="with --policy: disable hinted handoff (ablation)",
    )
    chaos.add_argument(
        "--no-read-repair", action="store_true",
        help="with --policy: disable read repair (ablation)",
    )
    chaos.add_argument(
        "--campaign", type=int, default=1, metavar="K",
        help="independent seeded runs per scheme, seeds derived from "
             "--seed (default 1: run --seed itself)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the campaign "
             "(0 = one per CPU; default 1, serial)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="traced workload run: spans from every layer plus one "
             "unified metrics snapshot",
    )
    metrics.add_argument("--scheme", type=_scheme,
                         default=SchemeName.VOTING,
                         help="voting | available-copy | "
                              "naive-available-copy (default voting)")
    metrics.add_argument("-n", "--sites", type=int, default=5)
    metrics.add_argument("--rho", type=float, default=0.05)
    metrics.add_argument("--horizon", type=float, default=2_000.0)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--trace", metavar="FILE", default=None,
                         help="write span-level JSON lines to FILE "
                              "(schema-validated after writing)")
    metrics.add_argument("--json", action="store_true",
                         help="emit the snapshot as JSON, not text")

    lint = sub.add_parser(
        "lint",
        help="determinism & protocol-invariant linter (RL001-RL008)",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _cmd_list(out) -> int:
    for experiment_id in EXPERIMENTS:
        print(experiment_id, file=out)
    return 0


def _cmd_run(args, out) -> int:
    try:
        report = run_experiment(args.experiment)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(report.render(), file=out)
    return 0


def _cmd_availability(args, out) -> int:
    n, rho = args.copies, args.rho
    print(f"availability of {n} copies at rho={rho:g}:", file=out)
    for scheme in SchemeName:
        value = scheme_availability(scheme, n, rho)
        print(f"  {scheme.short:4s} {value:.6f}", file=out)
    voting_double = scheme_availability(SchemeName.VOTING, 2 * n, rho)
    print(f"  (MCV with {2 * n} copies: {voting_double:.6f} -- "
          "Theorem 4.1's comparison)", file=out)
    return 0


def _cmd_size(args, out) -> int:
    from .analysis.sizing import size_all_schemes
    from .errors import AnalysisError

    try:
        result = size_all_schemes(args.rho, args.target)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"copies needed for availability >= {args.target:g} at "
          f"rho={args.rho:g}:", file=out)
    for scheme, copies in result.copies.items():
        print(f"  {scheme.short:4s} {copies}", file=out)
    print(f"  (voting/available-copy storage ratio: "
          f"{result.voting_to_available_ratio:.2f} -- Theorem 4.1 "
          "predicts about 2)", file=out)
    return 0


def _cmd_mttf(args, out) -> int:
    from .analysis.reliability import scheme_mean_outage, scheme_mttf

    n, rho = args.copies, args.rho
    print(f"reliability of {n} copies at rho={rho:g} "
          "(time unit: mean repair time):", file=out)
    print(f"  {'scheme':6s} {'MTTF':>12s} {'mean outage':>12s}", file=out)
    for scheme in SchemeName:
        print(
            f"  {scheme.short:6s} {scheme_mttf(scheme, n, rho):>12.2f} "
            f"{scheme_mean_outage(scheme, n, rho):>12.3f}",
            file=out,
        )
    return 0


def _cmd_trace(args, out) -> int:
    from .workload import WorkloadSpec
    from .workload.trace import Trace, record_trace

    if args.trace_command == "generate":
        trace = record_trace(
            WorkloadSpec(
                read_write_ratio=args.ratio,
                distribution=args.distribution,
            ),
            num_blocks=args.blocks,
            count=args.count,
            seed=args.seed,
        )
        trace.dump(out)
        return 0
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            trace = Trace.load(handle)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ratio = trace.read_write_ratio()
    ratio_text = "inf" if ratio == float("inf") else f"{ratio:.2f}"
    print(f"{args.path}: {len(trace)} operations, "
          f"read:write = {ratio_text}, "
          f"{trace.blocks_touched()} blocks touched "
          f"(max index {trace.max_block()})", file=out)
    return 0


def _dump_trace(tracer, path, out) -> int:
    """Write, re-read and schema-validate a span trace; 0 on success."""
    from .obs import load_trace

    written = tracer.dump(path)
    with open(path, "r", encoding="utf-8") as handle:
        try:
            load_trace(handle)
        except ValueError as exc:
            print(f"error: invalid trace written to {path}: {exc}",
                  file=sys.stderr)
            return 2
    layers = ", ".join(
        f"{layer}={count}"
        for layer, count in sorted(tracer.layers().items())
    )
    print(f"trace: {written} spans -> {path} ({layers})", file=out)
    return 0


def _check_jobs(jobs) -> Optional[str]:
    """None (serial) and >= 0 are fine; 0 means one worker per CPU."""
    if jobs is not None and jobs < 0:
        return f"--jobs must be >= 0, got {jobs}"
    return None


def _cmd_experiments(args, out) -> int:
    from .experiments import run_all

    error = _check_jobs(args.jobs)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    reports = run_all(jobs=args.jobs)
    for report in reports:
        print(report.render(), file=out)
        print(file=out)
    print(f"ran {len(reports)} experiments", file=out)
    return 0


def _simulate_replication(task):
    """Pool worker: one seeded workload run; summary numbers only."""
    scheme, sites, rho, horizon, op_rate, ratio, mode = task.payload
    cluster = ReplicatedCluster(
        ClusterConfig(
            scheme=scheme, num_sites=sites, failure_rate=rho,
            repair_rate=1.0, addressing=mode, seed=task.seed,
        )
    )
    runner = WorkloadRunner(
        cluster,
        WorkloadSpec(read_write_ratio=ratio, op_rate=op_rate),
    )
    result = runner.run(horizon)
    return (
        cluster.availability(),
        result.mean_messages(OpKind.WRITE),
        result.mean_messages(OpKind.READ),
    )


def _cmd_simulate_replicated(args, out) -> int:
    """Fan --replications independent seeded runs out over --jobs."""
    from .exec import ParallelRunner
    from .sim.stats import RunningStat

    if args.trace:
        print("error: --trace needs a single run "
              "(drop --replications)", file=sys.stderr)
        return 2
    mode = AddressingMode(args.addressing)
    payload = (args.scheme, args.sites, args.rho, args.horizon,
               args.op_rate, args.read_write_ratio, mode)
    runner = ParallelRunner(jobs=args.jobs, name="simulate")
    rows = runner.map(
        _simulate_replication,
        [payload] * args.replications,
        base_seed=args.seed,
        namespace=f"simulate:{args.scheme.value}",
    )
    availability = RunningStat()
    writes, reads = RunningStat(), RunningStat()
    for a, w, r in rows:
        availability.add(a)
        writes.add(w)
        reads.add(r)
    analytic = scheme_availability(args.scheme, args.sites, args.rho)
    model = traffic_model(args.scheme, args.sites, args.rho, mode=mode)
    print(f"scheme={args.scheme.value} n={args.sites} rho={args.rho:g} "
          f"horizon={args.horizon:g} seed={args.seed} "
          f"replications={args.replications} jobs={runner.jobs} "
          f"backend={runner.stats.backend}", file=out)
    print(f"availability: simulated {availability.mean:.6f} "
          f"+/- {availability.stderr:.6f}  analytic {analytic:.6f}",
          file=out)
    print(f"write msgs:   simulated {writes.mean:.3f}  "
          f"model {model.write:.3f}", file=out)
    print(f"read msgs:    simulated {reads.mean:.3f}  "
          f"model {model.read:.3f}", file=out)
    return 0


def _cmd_simulate(args, out) -> int:
    error = _check_jobs(args.jobs)
    if error is None and args.replications < 1:
        error = f"--replications must be >= 1, got {args.replications}"
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.replications > 1:
        return _cmd_simulate_replicated(args, out)
    mode = AddressingMode(args.addressing)
    cluster = ReplicatedCluster(
        ClusterConfig(
            scheme=args.scheme,
            num_sites=args.sites,
            failure_rate=args.rho,
            repair_rate=1.0,
            addressing=mode,
            seed=args.seed,
        )
    )
    obs = None
    if args.trace:
        from .obs import observe_cluster

        obs = observe_cluster(cluster)
    runner = WorkloadRunner(
        cluster,
        WorkloadSpec(read_write_ratio=args.read_write_ratio,
                     op_rate=args.op_rate),
        metrics=obs.registry if obs else None,
    )
    result = runner.run(args.horizon)
    if obs is not None:
        status = _dump_trace(obs.tracer, args.trace, out)
        if status:
            return status
    analytic = scheme_availability(args.scheme, args.sites, args.rho)
    model = traffic_model(args.scheme, args.sites, args.rho, mode=mode)
    print(f"scheme={args.scheme.value} n={args.sites} rho={args.rho:g} "
          f"horizon={args.horizon:g} seed={args.seed}", file=out)
    print(f"availability: simulated {cluster.availability():.6f}  "
          f"analytic {analytic:.6f}", file=out)
    print(f"write msgs:   simulated "
          f"{result.mean_messages(OpKind.WRITE):.3f}  "
          f"model {model.write:.3f}", file=out)
    print(f"read msgs:    simulated "
          f"{result.mean_messages(OpKind.READ):.3f}  "
          f"model {model.read:.3f}", file=out)
    print(f"recovery:     simulated "
          f"{cluster.meter.mean_messages('recovery'):.3f}  "
          f"model {model.recovery:.3f}", file=out)
    failed = sum(result.attempted.values()) - sum(result.succeeded.values())
    print(f"operations:   {sum(result.attempted.values())} attempted, "
          f"{failed} failed while unavailable", file=out)
    return 0


def _cmd_chaos(args, out) -> int:
    from .core import QuorumPolicy
    from .device.reliable import RetryPolicy
    from .errors import QuorumPolicyError, ReproError
    from .faults import ChaosConfig, run_chaos, run_chaos_campaign

    try:
        retry = RetryPolicy(max_attempts=args.max_attempts,
                            initial_delay=0.0)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    policy = None
    if args.policy is not None:
        try:
            policy = QuorumPolicy.parse(
                args.policy,
                allow_sloppy=True,
                hinted_handoff=not args.no_hinted_handoff,
                read_repair=not args.no_read_repair,
            )
        except QuorumPolicyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.no_hinted_handoff or args.no_read_repair:
        print("error: --no-hinted-handoff/--no-read-repair need --policy",
              file=sys.stderr)
        return 2
    error = _check_jobs(args.jobs)
    if error is None and args.campaign < 1:
        error = f"--campaign must be >= 1, got {args.campaign}"
    if error is None and args.reconfigure_rate is not None:
        if not 0.0 < args.reconfigure_rate <= 1.0:
            error = ("--reconfigure-rate must be in (0, 1], got "
                     f"{args.reconfigure_rate}")
    if error is None and args.spare_sites < 0:
        error = f"--spare-sites must be >= 0, got {args.spare_sites}"
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    reconfigure_rate = args.reconfigure_rate
    if reconfigure_rate is None:
        reconfigure_rate = 0.08 if args.reconfigure else 0.0
    if args.campaign > 1 and args.trace:
        print("error: --trace needs a single run (drop --campaign)",
              file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from .obs import Tracer

        tracer = Tracer()
    schemes = [args.scheme] if args.scheme else list(SchemeName)
    all_ok = True
    for scheme in schemes:
        config = ChaosConfig(
            scheme=scheme,
            seed=args.seed,
            num_sites=policy.rf if policy is not None else args.sites,
            num_blocks=args.blocks,
            operations=args.operations,
            fault_rate=args.fault_rate,
            reconfigure_rate=reconfigure_rate,
            spare_sites=args.spare_sites,
            fencing=not args.no_fencing,
            retry=retry,
            policy=policy,
        )
        try:
            if args.campaign > 1:
                results = run_chaos_campaign(
                    config, runs=args.campaign, jobs=args.jobs
                )
            else:
                results = [run_chaos(config, tracer=tracer)]
        except ReproError as exc:
            # A run that dies (instead of recording a violation) is
            # still a failed check: report it and exit nonzero rather
            # than crash with a traceback -- CI keys off the exit code.
            print(f"  RUN FAILED [{scheme.value}] "
                  f"{type(exc).__name__}: {exc}", file=out)
            all_ok = False
            continue
        for result in results:
            print(result.summary(), file=out)
            if args.verbose:
                for kind, count in sorted(result.history.items()):
                    print(f"    {kind:22s} {count}", file=out)
            for violation in result.violations:
                print(f"  VIOLATION {violation}", file=out)
            if args.verbose:
                for witness in result.staleness_witnesses:
                    print(f"  STALE {witness}", file=out)
            for site_id, block in result.unaccounted_corruptions:
                print(f"  UNACCOUNTED corruption at site {site_id}, "
                      f"block {block}", file=out)
            all_ok = all_ok and result.ok
    if tracer is not None:
        status = _dump_trace(tracer, args.trace, out)
        if status:
            return status
    print("chaos: all checks passed" if all_ok
          else "chaos: CONSISTENCY CHECK FAILED", file=out)
    return 0 if all_ok else 1


def _cmd_metrics(args, out) -> int:
    from .obs import traced_workload

    run = traced_workload(
        scheme=args.scheme,
        num_sites=args.sites,
        rho=args.rho,
        horizon=args.horizon,
        seed=args.seed,
    )
    if args.trace:
        status = _dump_trace(run.obs.tracer, args.trace, out)
        if status:
            return status
    snapshot = run.obs.registry.snapshot()
    if args.json:
        print(snapshot.to_json(), file=out)
    else:
        print(snapshot.render(), file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "experiments":
        return _cmd_experiments(args, out)
    if args.command == "availability":
        return _cmd_availability(args, out)
    if args.command == "size":
        return _cmd_size(args, out)
    if args.command == "mttf":
        return _cmd_mttf(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "metrics":
        return _cmd_metrics(args, out)
    if args.command == "lint":
        from .lint.cli import run_lint

        return run_lint(args, out)
    return _cmd_simulate(args, out)
