"""Quorum policy study: sweeping (RF, R, W) from strict to sloppy.

The paper's voting scheme fixes quorums at majority; this study walks
the whole (RF, R, W) spectrum under one seeded chaos schedule and
answers three questions:

1. **What does strictness cost?**  Strict policies (``R + W > RF`` and
   ``2W > RF``) all keep the read-latest-write guarantee but trade
   read traffic against write traffic -- read-one/write-all (5:1:5)
   answers reads locally with zero messages while majority/majority
   (5:3:3) balances both sides.
2. **What does sloppiness buy -- and leak?**  Sloppy policies (5:2:1,
   5:1:1) stay available through deeper failures but legally serve
   stale reads, which the sloppy checker reports as
   :class:`~repro.faults.checker.StalenessWitness` records instead of
   violations.
3. **Do the classic mitigations work?**  Hinted handoff and read
   repair are each ablated on the sloppy policies where they bite:
   both demonstrably cut the witnessed staleness.

Every row is a full chaos run (crashes, corruptions, torn writes,
message drops) whose history passes the checker -- strict rows with
zero witnesses, sloppy rows with witnesses but zero violations.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.policy import QuorumPolicy
from ..faults.chaos import ChaosConfig, ChaosResult, run_chaos
from ..types import SchemeName
from .report import ExperimentReport, Table

__all__ = ["policy_study"]

#: The policy spectrum swept by the headline table (RF fixed at 5).
SPECTRUM = (
    QuorumPolicy(5, 1, 5),
    QuorumPolicy(5, 2, 4),
    QuorumPolicy(5, 3, 3),
    QuorumPolicy(5, 2, 1, allow_sloppy=True),
    QuorumPolicy(5, 1, 1, allow_sloppy=True),
)


def _run(
    policy: QuorumPolicy,
    seed: int,
    operations: int,
    scrub_every: int = 0,
    **overrides: float,
) -> ChaosResult:
    config = ChaosConfig(
        scheme=SchemeName.VOTING,
        seed=seed,
        num_sites=policy.rf,
        operations=operations,
        scrub_every=scrub_every,
        policy=policy,
        **overrides,  # type: ignore[arg-type]
    )
    return run_chaos(config)


def _sum_witnesses(results: List[ChaosResult]) -> int:
    return sum(len(r.staleness_witnesses) for r in results)


#: Crash-heavy mix where read repair is the only mitigation left
#: (hinted handoff off): long failures, frequent crashes, few drops.
_READ_REPAIR_MIX = dict(
    fault_rate=0.5,
    crash_weight=0.45,
    corrupt_weight=0.1,
    mid_write_weight=0.1,
    drop_weight=0.1,
    repair_rate=0.25,
    write_fraction=0.3,
)


def policy_study(
    seed: int = 7,
    operations: int = 300,
    ablation_seeds: int = 10,
) -> ExperimentReport:
    """Sweep the (RF, R, W) spectrum and ablate the mitigations."""
    report = ExperimentReport(
        experiment_id="policy-study",
        title="Tunable (RF, R, W) quorum policies under chaos",
    )

    table = Table(
        title=(
            f"policy spectrum, voting scheme (seed={seed}, "
            f"{operations} ops, scrub off)"
        ),
        columns=("policy", "writes ok", "reads ok", "stale reads",
                 "hints parked/replayed", "read repairs", "messages",
                 "bytes", "verdict"),
    )
    for policy in SPECTRUM:
        result = _run(policy, seed, operations)
        table.add_row(
            policy.describe(),
            f"{result.writes_ok}/{result.writes_ok + result.writes_failed}",
            f"{result.reads_ok}/{result.reads_ok + result.reads_failed}",
            len(result.staleness_witnesses),
            f"{result.hints_parked}/{result.hints_replayed}",
            result.read_repairs,
            result.messages,
            result.bytes_total,
            "OK" if result.ok else "VIOLATION",
        )
    report.add_table(table)

    hh_table = Table(
        title=(
            f"hinted handoff ablation, policy 5:1:1 (seed={seed}, "
            f"{operations} ops)"
        ),
        columns=("hinted handoff", "stale reads",
                 "hints parked/replayed", "verdict"),
    )
    for handoff in (True, False):
        policy = QuorumPolicy(
            5, 1, 1, allow_sloppy=True, hinted_handoff=handoff
        )
        result = _run(policy, seed, operations)
        hh_table.add_row(
            "on" if handoff else "off",
            len(result.staleness_witnesses),
            f"{result.hints_parked}/{result.hints_replayed}",
            "OK" if result.ok else "VIOLATION",
        )
    report.add_table(hh_table)

    rr_table = Table(
        title=(
            f"read repair ablation, policy 5:2:1, handoff off "
            f"(seeds 0..{ablation_seeds - 1}, crash-heavy mix)"
        ),
        columns=("read repair", "stale reads (total)",
                 "read repairs (total)", "verdict"),
    )
    for repair in (True, False):
        policy = QuorumPolicy(
            5, 2, 1, allow_sloppy=True,
            hinted_handoff=False, read_repair=repair,
        )
        results = [
            _run(policy, s, 400, **_READ_REPAIR_MIX)
            for s in range(ablation_seeds)
        ]
        rr_table.add_row(
            "on" if repair else "off",
            _sum_witnesses(results),
            sum(r.read_repairs for r in results),
            "OK" if all(r.ok for r in results) else "VIOLATION",
        )
    report.add_table(rr_table)

    report.note(
        "strict policies (R+W>RF and 2W>RF) keep read-latest-write "
        "with zero stale reads while moving traffic between the read "
        "and write sides; sloppy policies admit stale reads, which the "
        "checker witnesses (never as violations), and both hinted "
        "handoff and read repair measurably shrink that staleness"
    )
    return report
