"""Report primitives for the experiment harness.

Each experiment produces an :class:`ExperimentReport`: a title, free-text
notes, and one or more :class:`Table` objects (a figure is reported as
the table of the series it plots).  Reports render to aligned plain text,
which is what the benchmark harness prints and what EXPERIMENTS.md
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

__all__ = ["Table", "ExperimentReport", "format_number"]

Cell = Union[str, int, float, bool]


def format_number(value: Cell, precision: int = 6) -> str:
    """Render one cell: floats get fixed precision, the rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    precision: int = 6

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Cell]:
        """All values of one column (for tests and plotting)."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Aligned plain-text rendering."""
        header = list(self.columns)
        body = [
            [format_number(cell, self.precision) for cell in row]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body))
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(header[i].rjust(widths[i]) for i in range(len(header)))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append(
                "  ".join(row[i].rjust(widths[i]) for i in range(len(row)))
            )
        return "\n".join(lines)


@dataclass
class ExperimentReport:
    """The output of one experiment."""

    experiment_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_table(self, table: Table) -> None:
        self.tables.append(table)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
