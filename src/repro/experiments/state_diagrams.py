"""Figures 7 and 8 as artefacts: the state-transition-rate diagrams.

The paper's Figures 7 and 8 *are* the Markov chains; this experiment
renders our chain objects as transition tables (in multiples of lambda
and mu) so the reproduction of those two figures can be diffed against
the paper by eye, state by state and rate by rate.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple

from ..analysis.chains import (
    available_copy_chain,
    naive_available_copy_chain,
)
from ..analysis.markov import MarkovChain
from .report import ExperimentReport, Table

__all__ = ["figure7_8_diagrams", "transition_table"]

#: Probe ratio used to separate lambda-multiples from mu-multiples: the
#: chains are built with mu = 1 and lambda = rho, so with an irrational
#: -ish rho every rate decomposes uniquely as a*rho + b.
_PROBE_RHO = 1 / 137.0


def _label(state: Tuple) -> str:
    tag, index = state[0], state[1]
    return f"S{index}" if tag == "S" else f"S'{index}"


def _as_rate_expression(rate: float) -> str:
    """Express a probe-rho rate as ``k*lambda``, ``k*mu`` or a mix."""
    lam = _PROBE_RHO
    # try pure multiples of lambda and of mu (integers or small
    # fractions, e.g. mu/(n-j) in the serial chains)
    for k in range(1, 64):
        if abs(rate - k * lam) < 1e-12:
            return f"{k}λ" if k > 1 else "λ"
        if abs(rate - k) < 1e-12:
            return f"{k}μ" if k > 1 else "μ"
    fraction = Fraction(rate).limit_denominator(64)
    if abs(float(fraction) - rate) < 1e-12:
        return f"{fraction}μ"
    return f"{rate:g}"  # pragma: no cover - all chain rates decompose


def transition_table(chain: MarkovChain, title: str) -> Table:
    """One (src, dst, rate) row per transition, rates in lambda/mu."""
    table = Table(title=title, columns=("from", "to", "rate"))
    rows: Dict[Tuple[str, str], str] = {}
    for src, dst, rate in chain.transitions():
        rows[(_label(src), _label(dst))] = _as_rate_expression(rate)
    for (src, dst), rate in sorted(rows.items()):
        table.add_row(src, dst, rate)
    return table


def figure7_8_diagrams(n: int = 4) -> ExperimentReport:
    """Render both state diagrams for an ``n``-copy block."""
    report = ExperimentReport(
        experiment_id="figures-7-8",
        title=f"State-transition-rate diagrams for n={n} copies",
    )
    report.add_table(
        transition_table(
            available_copy_chain(n, _PROBE_RHO),
            f"Figure 7: available copy ({2 * n} states)",
        )
    )
    report.add_table(
        transition_table(
            naive_available_copy_chain(n, _PROBE_RHO),
            f"Figure 8: naive available copy ({2 * n} states)",
        )
    )
    report.note(
        "compare with the paper: S'_j states exit to S_{j+1} at rate mu "
        "in Figure 7 (the last copy to fail recovers) but have no such "
        "exit in Figure 8 except from S'_{n-1}"
    )
    return report
