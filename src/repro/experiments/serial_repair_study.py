"""Serial-repair ablation: what if repairs are not parallel?

Section 4 assumes "the repair process will be performed in parallel" on
all failed sites.  This study replaces that assumption with a single
shared repair facility and measures the damage, per scheme, under two
service disciplines:

* **random** -- the facility repairs a uniformly random failed site;
  Markovian, so the simulated availabilities are checked against the
  :mod:`repro.analysis.serial_repair` chains;
* **FIFO** -- oldest failure first.  After a total failure the last
  site to fail is served last, so the tracked available-copy scheme's
  early-recovery edge mostly disappears (it survives only through
  comatose re-failures that re-enter the queue) -- a serial-repair echo
  of the Section 4.4 regular-repairs discussion.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.serial_repair import serial_availability
from ..analysis.availability import scheme_availability
from ..device.cluster import ClusterConfig, ReplicatedCluster
from ..exec import ParallelRunner, Task
from ..types import SchemeName
from .report import ExperimentReport, Table

__all__ = ["serial_repair_study"]

_TAGS = {
    SchemeName.VOTING: "voting",
    SchemeName.AVAILABLE_COPY: "ac",
    SchemeName.NAIVE_AVAILABLE_COPY: "nac",
}


def _simulated(
    scheme: SchemeName,
    n: int,
    rho: float,
    capacity: Optional[int],
    discipline: str,
    horizon: float,
    seed: int,
) -> float:
    cluster = ReplicatedCluster(
        ClusterConfig(
            scheme=scheme,
            num_sites=n,
            num_blocks=4,
            failure_rate=rho,
            repair_rate=1.0,
            seed=seed,
            repair_capacity=capacity,
            repair_discipline=discipline,
        )
    )
    cluster.run_until(horizon)
    return cluster.availability()


def _simulated_cell(task: Task) -> float:
    """Pool worker: one simulated repair-discipline grid cell.

    The seed rides in the payload (all cells share the study's fixed
    seed, exactly as the serial loop always did), so any ``jobs``
    reproduces the serial table bit for bit.
    """
    return _simulated(*task.payload)


def serial_repair_study(
    n: int = 3,
    rho: float = 0.3,
    horizon: float = 200_000.0,
    seed: int = 46,
    schemes: Sequence[SchemeName] = tuple(SchemeName),
    jobs: Optional[int] = None,
) -> ExperimentReport:
    """Parallel vs single-facility repair, per scheme."""
    report = ExperimentReport(
        experiment_id="serial-repair-study",
        title=f"Single repair facility vs parallel repair (n={n}, "
              f"rho={rho:g})",
    )
    table = Table(
        title=f"horizon={horizon:g}, seed={seed}",
        columns=(
            "scheme",
            "parallel (analytic)",
            "parallel (sim)",
            "serial random (chain)",
            "serial random (sim)",
            "serial fifo (sim)",
        ),
        precision=5,
    )
    variants = (
        (None, "fifo"),  # parallel repair (capacity unbounded)
        (1, "random"),
        (1, "fifo"),
    )
    cells = [
        (scheme, n, rho, capacity, discipline, horizon, seed)
        for scheme in schemes
        for capacity, discipline in variants
    ]
    runner = ParallelRunner(jobs=jobs, name="serial-repair")
    results = runner.map(_simulated_cell, cells, namespace="cell")
    simulated = dict(zip(
        ((c[0], c[3], c[4]) for c in cells), results
    ))
    for scheme in schemes:
        tag = _TAGS[scheme]
        table.add_row(
            scheme.short,
            scheme_availability(scheme, n, rho),
            simulated[(scheme, None, "fifo")],
            serial_availability(tag, n, rho),
            simulated[(scheme, 1, "random")],
            simulated[(scheme, 1, "fifo")],
        )
    report.add_table(table)
    report.note(
        "serial repair costs every scheme availability; under FIFO the "
        "tracked available-copy scheme loses most of its edge over "
        "naive because the last site to fail is repaired last"
    )
    report.note(
        "the naive scheme is discipline-insensitive (it waits for "
        "everyone regardless of order), so its random and fifo columns "
        "agree up to Monte-Carlo noise"
    )
    return report
