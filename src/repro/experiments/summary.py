"""The Conclusions section (Section 6), as one quantified table.

Each claim the paper's conclusions make in prose becomes a measured
column for a representative configuration (n copies, rho = 0.05, the
"typical value" of Section 5), so the whole argument for naive
available copy can be read off a single table:

* availability (and the voting group of twice the size, Theorem 4.1);
* transmissions per write / read / recovery on a multicast network;
* MTTF and mean outage duration (the reliability extension);
* copies needed for 99.99% availability (the storage bill).
"""

from __future__ import annotations

from ..analysis.availability import scheme_availability, voting_availability
from ..analysis.reliability import scheme_mean_outage, scheme_mttf
from ..analysis.sizing import copies_needed
from ..analysis.traffic import traffic_model
from ..types import SchemeName
from .report import ExperimentReport, Table

__all__ = ["conclusions_summary"]


def conclusions_summary(
    n: int = 3, rho: float = 0.05, target: float = 0.9999
) -> ExperimentReport:
    """Every Section 6 claim, one row per scheme."""
    report = ExperimentReport(
        experiment_id="conclusions-summary",
        title=f"Section 6, quantified (n={n}, rho={rho:g}, multicast)",
    )
    table = Table(
        title="per-scheme scorecard",
        columns=(
            "metric",
            SchemeName.VOTING.short,
            SchemeName.AVAILABLE_COPY.short,
            SchemeName.NAIVE_AVAILABLE_COPY.short,
        ),
        precision=4,
    )

    def row(metric, fn):
        table.add_row(metric, *(fn(scheme) for scheme in SchemeName))

    row(f"availability ({n} copies)",
        lambda s: scheme_availability(s, n, rho))
    row("transmissions per write",
        lambda s: traffic_model(s, n, rho).write)
    row("transmissions per read",
        lambda s: traffic_model(s, n, rho).read)
    row("transmissions per recovery",
        lambda s: traffic_model(s, n, rho).recovery)
    row("MTTF (mean repair times)",
        lambda s: scheme_mttf(s, n, rho))
    row("mean outage duration",
        lambda s: scheme_mean_outage(s, n, rho))
    row(f"copies for {target:.2%} availability",
        lambda s: copies_needed(s, rho, target))
    report.add_table(table)

    report.note(
        '"A consistency control mechanism based on available copy had '
        'the availability of a voting scheme with twice the number of '
        f'sites": A_V({2 * n}) = '
        f"{voting_availability(2 * n, rho):.6f} vs A_A({n}) = "
        f"{scheme_availability(SchemeName.AVAILABLE_COPY, n, rho):.6f}"
    )
    report.note(
        '"The naive available copy scheme ... eclipses the standard '
        'available copy algorithm": equal reads, cheaper writes '
        f"({traffic_model(SchemeName.NAIVE_AVAILABLE_COPY, n, rho).write:.0f}"
        f" vs "
        f"{traffic_model(SchemeName.AVAILABLE_COPY, n, rho).write:.2f} "
        "transmissions) at an availability cost of "
        f"{scheme_availability(SchemeName.AVAILABLE_COPY, n, rho) - scheme_availability(SchemeName.NAIVE_AVAILABLE_COPY, n, rho):.2e}"
    )
    return report
