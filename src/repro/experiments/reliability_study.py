"""Reliability extension: MTTF, outage duration and survival curves.

The paper's evaluation stops at steady-state availability; this
experiment completes the reliability picture its introduction promises,
using the same Markov models.  It reports, per scheme and group size:

* mean time to first unavailability (all copies up at t = 0),
* mean duration of one unavailability episode, and
* the survival probability R(t) over a grid of mission times,

and cross-checks the MTTF against a Monte-Carlo measurement of the
actual protocol implementations (time until ``is_available()`` first
turns false).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.reliability import (
    scheme_mean_outage,
    scheme_mttf,
    scheme_survival,
)
from ..device.cluster import ClusterConfig, ReplicatedCluster
from ..sim.stats import RunningStat
from ..types import SchemeName, SiteId
from .report import ExperimentReport, Table

__all__ = ["reliability_study", "simulated_mttf"]


def simulated_mttf(
    scheme: SchemeName,
    n: int,
    rho: float,
    episodes: int = 200,
    seed: int = 77,
) -> float:
    """Monte-Carlo mean time to first unavailability.

    Runs the real protocol under the failure process and measures the
    time of the first availability loss, repeatedly with fresh seeds.
    """
    stat = RunningStat()
    for episode in range(episodes):
        cluster = ReplicatedCluster(
            ClusterConfig(
                scheme=scheme, num_sites=n, num_blocks=4,
                failure_rate=rho, repair_rate=1.0,
                seed=seed * 100_003 + episode,
            )
        )
        first_loss = [None]

        def watch(_site: SiteId, time: float) -> None:
            if first_loss[0] is None and not cluster.protocol.is_available():
                first_loss[0] = time
                cluster.sim.stop()

        cluster.failures.on_failure(watch)
        cluster.start_failures()
        # generous horizon; MTTF for the sizes used here is far smaller
        cluster.sim.run(until=1e7)
        if first_loss[0] is None:  # pragma: no cover - horizon is ample
            continue
        stat.add(first_loss[0])
    return stat.mean


def reliability_study(
    site_counts: Sequence[int] = (1, 2, 3, 4),
    rho: float = 0.2,
    mission_times: Sequence[float] = (10.0, 50.0, 250.0),
    simulate: bool = True,
    episodes: int = 200,
) -> ExperimentReport:
    """MTTF / outage / survival comparison of the three schemes."""
    report = ExperimentReport(
        experiment_id="reliability-study",
        title=f"Reliability extension (rho={rho:g}, mu=1)",
    )
    mttf = Table(
        title="Mean time to first unavailability (and per-episode outage)",
        columns=("scheme", "n", "MTTF", "mean outage")
        + (("MTTF simulated",) if simulate else ()),
        precision=2,
    )
    for scheme in SchemeName:
        for n in site_counts:
            row = [
                scheme.short,
                n,
                scheme_mttf(scheme, n, rho),
                scheme_mean_outage(scheme, n, rho),
            ]
            if simulate:
                row.append(simulated_mttf(scheme, n, rho, episodes=episodes))
            mttf.add_row(*row)
    report.add_table(mttf)

    survival = Table(
        title="Survival probability R(t), all copies up at t=0",
        columns=("scheme", "n") + tuple(f"t={t:g}" for t in mission_times),
        precision=4,
    )
    for scheme in SchemeName:
        for n in site_counts:
            survival.add_row(
                scheme.short,
                n,
                *(scheme_survival(scheme, n, rho, t) for t in mission_times),
            )
    report.add_table(survival)
    report.note(
        "the tracked and naive available-copy schemes share the same "
        "MTTF -- they differ only in how fast they return from a total "
        "failure (the outage column)"
    )
    report.note(
        "voting fails far sooner (any minority loss) but each outage is "
        "short; the available-copy schemes fail only on total failures"
    )
    return report
