"""Reliability extension: MTTF, outage duration and survival curves.

The paper's evaluation stops at steady-state availability; this
experiment completes the reliability picture its introduction promises,
using the same Markov models.  It reports, per scheme and group size:

* mean time to first unavailability (all copies up at t = 0),
* mean duration of one unavailability episode, and
* the survival probability R(t) over a grid of mission times,

and cross-checks the MTTF against a Monte-Carlo measurement of the
actual protocol implementations (time until ``is_available()`` first
turns false).

The Monte-Carlo episodes are pure and independently seeded, so they
fan out over :class:`~repro.exec.ParallelRunner` -- ``jobs=N`` uses N
worker processes and produces **bit-identical** estimates to the
serial run (seeds derive from the episode index, never the schedule).

Episodes whose horizon expires before the first loss are *censored*:
they are counted and reported, and the estimate raises
:class:`~repro.errors.CensoredEstimateError` when too many episodes
are censored to trust the mean (dropping exactly the longest-lived
episodes biases the MTTF downward).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..analysis.reliability import (
    scheme_mean_outage,
    scheme_mttf,
    scheme_survival,
)
from ..device.cluster import ClusterConfig, ReplicatedCluster
from ..errors import CensoredEstimateError
from ..exec import ParallelRunner, Task, namespace_seed
from ..sim.stats import RunningStat
from ..types import SchemeName, SiteId
from .report import ExperimentReport, Table

__all__ = [
    "MttfEstimate",
    "simulated_mttf",
    "simulated_mttf_estimate",
    "reliability_study",
]

#: Generous episode horizon; the MTTFs probed here are far smaller.
DEFAULT_HORIZON = 1e7

#: Default ceiling on the tolerated censored-episode fraction.
DEFAULT_MAX_CENSORED = 0.05


@dataclass(frozen=True)
class MttfEstimate:
    """A Monte-Carlo MTTF with explicit censoring accounting."""

    mean: float
    episodes: int
    censored: int

    @property
    def observed(self) -> int:
        """Episodes that saw a loss before the horizon."""
        return self.episodes - self.censored

    @property
    def censored_fraction(self) -> float:
        return self.censored / self.episodes if self.episodes else 0.0


def _mttf_episode(task: Task) -> Optional[float]:
    """One episode: time of the first availability loss, or None.

    Pure worker for :class:`~repro.exec.ParallelRunner`: everything
    derives from the task's payload ``(scheme, n, rho, horizon)`` and
    its own seed, so episodes run identically in any process and any
    order.
    """
    scheme, n, rho, horizon = task.payload
    cluster = ReplicatedCluster(
        ClusterConfig(
            scheme=scheme, num_sites=n, num_blocks=4,
            failure_rate=rho, repair_rate=1.0,
            seed=task.seed,
        )
    )
    first_loss: list = [None]

    def watch(_site: SiteId, time: float) -> None:
        if first_loss[0] is None and not cluster.protocol.is_available():
            first_loss[0] = time
            cluster.sim.stop()

    cluster.failures.on_failure(watch)
    cluster.start_failures()
    cluster.sim.run(until=horizon)
    return first_loss[0]


def simulated_mttf_estimate(
    scheme: SchemeName,
    n: int,
    rho: float,
    episodes: int = 200,
    seed: int = 77,
    jobs: Optional[int] = None,
    horizon: float = DEFAULT_HORIZON,
    max_censored_fraction: float = DEFAULT_MAX_CENSORED,
    runner: Optional[ParallelRunner] = None,
) -> MttfEstimate:
    """Monte-Carlo MTTF with censoring accounting, optionally parallel.

    Episode seeds are keyed on ``(scheme, n, rho, seed, episode)``, so
    the estimate is a pure function of the arguments: any ``jobs``
    value (including a pool that completes episodes out of order)
    returns the same bits.
    """
    runner = runner if runner is not None else ParallelRunner(
        jobs=jobs, name="mttf"
    )
    payload: Tuple = (scheme, n, rho, horizon)
    losses = runner.map(
        _mttf_episode,
        [payload] * episodes,
        base_seed=namespace_seed(seed, f"mttf:{scheme.value}:{n}:{rho!r}"),
        namespace="episode",
    )
    stat = RunningStat()
    censored = 0
    for loss in losses:  # index order: aggregation is schedule-free
        if loss is None:
            censored += 1
        else:
            stat.add(loss)
    estimate = MttfEstimate(
        mean=stat.mean if stat.count else math.nan,
        episodes=episodes,
        censored=censored,
    )
    if estimate.censored_fraction > max_censored_fraction:
        raise CensoredEstimateError(
            censored, episodes, max_censored_fraction
        )
    return estimate


def simulated_mttf(
    scheme: SchemeName,
    n: int,
    rho: float,
    episodes: int = 200,
    seed: int = 77,
    jobs: Optional[int] = None,
) -> float:
    """Monte-Carlo mean time to first unavailability.

    Runs the real protocol under the failure process and measures the
    time of the first availability loss, repeatedly with fresh seeds.
    Thin wrapper over :func:`simulated_mttf_estimate` for callers that
    only want the mean.
    """
    return simulated_mttf_estimate(
        scheme, n, rho, episodes=episodes, seed=seed, jobs=jobs
    ).mean


def reliability_study(
    site_counts: Sequence[int] = (1, 2, 3, 4),
    rho: float = 0.2,
    mission_times: Sequence[float] = (10.0, 50.0, 250.0),
    simulate: bool = True,
    episodes: int = 200,
    jobs: Optional[int] = None,
) -> ExperimentReport:
    """MTTF / outage / survival comparison of the three schemes."""
    report = ExperimentReport(
        experiment_id="reliability-study",
        title=f"Reliability extension (rho={rho:g}, mu=1)",
    )
    mttf = Table(
        title="Mean time to first unavailability (and per-episode outage)",
        columns=("scheme", "n", "MTTF", "mean outage")
        + (("MTTF simulated", "censored") if simulate else ()),
        precision=2,
    )
    for scheme in SchemeName:
        for n in site_counts:
            row = [
                scheme.short,
                n,
                scheme_mttf(scheme, n, rho),
                scheme_mean_outage(scheme, n, rho),
            ]
            if simulate:
                estimate = simulated_mttf_estimate(
                    scheme, n, rho, episodes=episodes, jobs=jobs
                )
                row += [estimate.mean, estimate.censored]
            mttf.add_row(*row)
    report.add_table(mttf)

    survival = Table(
        title="Survival probability R(t), all copies up at t=0",
        columns=("scheme", "n") + tuple(f"t={t:g}" for t in mission_times),
        precision=4,
    )
    for scheme in SchemeName:
        for n in site_counts:
            survival.add_row(
                scheme.short,
                n,
                *(scheme_survival(scheme, n, rho, t) for t in mission_times),
            )
    report.add_table(survival)
    report.note(
        "the tracked and naive available-copy schemes share the same "
        "MTTF -- they differ only in how fast they return from a total "
        "failure (the outage column)"
    )
    report.note(
        "voting fails far sooner (any minority loss) but each outage is "
        "short; the available-copy schemes fail only on total failures"
    )
    if simulate:
        report.note(
            "censored counts episodes whose horizon expired before any "
            "loss; they are excluded from the simulated mean and capped "
            f"at {DEFAULT_MAX_CENSORED:.0%} of the episodes"
        )
    return report
