"""Batched multi-block I/O study: single-round group quorums.

The batched pipeline amortizes the consistency machinery: one
version-collection round and one scatter-gather fan-out cover a whole
batch, so an n-block batch costs roughly the messages of a single
sequential access instead of n of them.  This study measures that win
directly on fault-free replica groups:

* **messages per batch** -- for each scheme, the transmissions spent on
  one batch of ``batch`` blocks, batched vs. looped sequentially;
* **latency in protocol rounds** -- each round (a request fan-out plus
  its replies) costs one network round-trip, so rounds-per-batch is the
  simulated-time speedup under a unit-RTT model;
* **a batch-size sweep** on voting showing messages-per-block falling
  toward the fan-out floor as the batch grows.

Per-block semantics (quorum intersection, version assignment, fencing)
are untouched by batching -- the equivalence tests pin that down; this
experiment only quantifies the traffic and latency side.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..device.cluster import ClusterConfig, ReplicatedCluster
from ..exec import ParallelRunner, Task
from ..types import AddressingMode, SchemeName
from .report import ExperimentReport, Table

__all__ = ["batching_study"]


def _fresh_cluster(
    scheme: SchemeName,
    num_sites: int,
    num_blocks: int,
    block_size: int,
    mode: AddressingMode,
) -> ReplicatedCluster:
    """A fault-free group (rho=0) so counts are exact, not sampled."""
    return ReplicatedCluster(
        ClusterConfig(
            scheme=scheme,
            num_sites=num_sites,
            num_blocks=num_blocks,
            block_size=block_size,
            failure_rate=0.0,
            repair_rate=1.0,
            addressing=mode,
        )
    )


def _measure(cluster: ReplicatedCluster, batch: int):
    """(read_seq, read_batch, write_seq, write_batch) message counts,
    plus the matching protocol-round counts from the device layer."""
    device = cluster.device()

    def fill(tag: int) -> bytes:
        return bytes([tag % 256]) * cluster.config.block_size

    # prime every block so reads are well-defined
    device.write_blocks({b: fill(1) for b in range(batch)})
    device.fault_stats.write_rounds = 0

    meter = cluster.meter

    before = meter.total
    for b in range(batch):
        device.write_block(b, fill(2))
    write_seq = meter.total - before
    write_seq_rounds = device.fault_stats.write_rounds

    before = meter.total
    device.write_blocks({b: fill(3) for b in range(batch)})
    write_batch = meter.total - before
    write_batch_rounds = device.fault_stats.write_rounds - write_seq_rounds

    before = meter.total
    for b in range(batch):
        device.read_block(b)
    read_seq = meter.total - before
    read_seq_rounds = device.fault_stats.read_rounds

    before = meter.total
    device.read_blocks(list(range(batch)))
    read_batch = meter.total - before
    read_batch_rounds = device.fault_stats.read_rounds - read_seq_rounds

    return {
        "read": (read_seq, read_batch, read_seq_rounds, read_batch_rounds),
        "write": (write_seq, write_batch,
                  write_seq_rounds, write_batch_rounds),
    }


def _ratio(sequential: int, batched: int) -> float:
    """Speedup factor; degenerate 0/0 (free operations) reports 1x."""
    if batched == 0:
        return 1.0 if sequential == 0 else float(sequential)
    return sequential / batched


def _measure_cell(task: Task):
    """Pool worker: build a fault-free group and measure one batch size.

    Counts are exact (rho=0, no sampling), so the cell is a pure
    function of its payload and any ``jobs`` value reproduces the
    serial tables exactly.
    """
    scheme, num_sites, batch, block_bytes, mode = task.payload
    cluster = _fresh_cluster(
        scheme, num_sites, max(batch, 16), block_bytes, mode
    )
    return _measure(cluster, batch)


def batching_study(
    num_sites: int = 5,
    batch: int = 8,
    batch_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    block_bytes: int = 512,
    mode: AddressingMode = AddressingMode.MULTICAST,
    jobs: Optional[int] = None,
) -> ExperimentReport:
    """Messages and round-trips: batched vs. sequential multi-block I/O."""
    report = ExperimentReport(
        experiment_id="batching-study",
        title=(
            f"Batched multi-block I/O vs. sequential "
            f"(n={num_sites}, batch={batch}, {mode.value})"
        ),
    )

    table = Table(
        title=f"messages and protocol rounds for one {batch}-block batch",
        columns=(
            "scheme", "op",
            "seq msgs", "batch msgs", "msg speedup",
            "seq rounds", "batch rounds",
        ),
        precision=1,
    )
    runner = ParallelRunner(jobs=jobs, name="batching")
    scheme_cells = [
        (scheme, num_sites, batch, block_bytes, mode)
        for scheme in SchemeName
    ]
    sweep_cells = [
        (SchemeName.VOTING, num_sites, size, block_bytes, mode)
        for size in batch_sizes
    ]
    measured = runner.map(
        _measure_cell, scheme_cells + sweep_cells, namespace="cell"
    )
    scheme_counts = dict(zip(SchemeName, measured[:len(scheme_cells)]))
    sweep_counts = dict(zip(batch_sizes, measured[len(scheme_cells):]))
    for scheme in SchemeName:
        counts = scheme_counts[scheme]
        for op in ("read", "write"):
            seq, batched, seq_rounds, batch_rounds = counts[op]
            table.add_row(
                scheme.short, op, seq, batched,
                _ratio(seq, batched), seq_rounds, batch_rounds,
            )
    report.add_table(table)

    sweep = Table(
        title="voting: messages per block as the batch grows",
        columns=(
            "batch size",
            "read msgs/blk", "write msgs/blk",
            "read rounds/blk", "write rounds/blk",
        ),
        precision=3,
    )
    for size in batch_sizes:
        counts = sweep_counts[size]
        _, read_batch, _, read_br = counts["read"]
        _, write_batch, _, write_br = counts["write"]
        sweep.add_row(
            size,
            read_batch / size,
            write_batch / size,
            read_br / size,
            write_br / size,
        )
    report.add_table(sweep)

    report.note(
        "one vote-collection round + one fan-out per batch: an n-block "
        "batch costs what a single sequential access does, so messages "
        "and round-trips fall ~n-fold (unit-RTT latency model)"
    )
    report.note(
        "per-block quorum intersection, version assignment and fencing "
        "are unchanged -- batching amortizes traffic, not guarantees"
    )
    return report
