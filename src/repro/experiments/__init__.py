"""Experiment harness: one module per paper figure/claim.

See DESIGN.md's experiment index for the mapping from the paper's
figures and theorem to these modules.  Every experiment returns a
plain-text-renderable :class:`~repro.experiments.report.ExperimentReport`
so results can be diffed across runs.
"""

from .ablations import (
    ablation_repair_regularity,
    ablation_voting_repair,
    ablation_was_available_freshness,
)
from .figures import (
    availability_comparison,
    figure9,
    figure10,
    figure11,
    figure12,
    traffic_comparison,
)
from .batching_study import batching_study
from .byte_study import byte_traffic_study
from .witness_study import witness_study, build_witness_group, simulate_witness_group
from .heterogeneity_study import heterogeneity_study, simulate_heterogeneous
from .membership_study import membership_study
from .partitions import partition_demo, run_partition_scenario
from .registry import EXPERIMENTS, run_all, run_experiment
from .reliability_study import (
    MttfEstimate,
    reliability_study,
    simulated_mttf,
    simulated_mttf_estimate,
)
from .serial_repair_study import serial_repair_study
from .report import ExperimentReport, Table
from .state_diagrams import figure7_8_diagrams, transition_table
from .summary import conclusions_summary
from .theorem import theorem41
from .validation import (
    ValidationSettings,
    validate_availability,
    validate_traffic,
)

__all__ = [
    "ExperimentReport",
    "Table",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "availability_comparison",
    "traffic_comparison",
    "theorem41",
    "figure7_8_diagrams",
    "conclusions_summary",
    "transition_table",
    "reliability_study",
    "batching_study",
    "byte_traffic_study",
    "witness_study",
    "partition_demo",
    "serial_repair_study",
    "heterogeneity_study",
    "membership_study",
    "simulate_heterogeneous",
    "run_partition_scenario",
    "build_witness_group",
    "simulate_witness_group",
    "simulated_mttf",
    "simulated_mttf_estimate",
    "MttfEstimate",
    "validate_availability",
    "validate_traffic",
    "ValidationSettings",
    "ablation_voting_repair",
    "ablation_was_available_freshness",
    "ablation_repair_regularity",
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
]
