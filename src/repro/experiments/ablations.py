"""Ablations of the design choices DESIGN.md calls out.

Three studies, each isolating one mechanism the paper argues for:

1. **Lazy versus eager voting repair** (Section 3.1 / 5.1).  Block-level
   voting can skip recovery entirely; the ablation re-enables the
   conventional refresh-on-repair and measures the recovery traffic the
   paper's design avoids.

2. **Was-available freshness** (Section 3.2).  The tracked scheme with
   ``track_failures=False`` updates W only on writes and repairs -- the
   paper's cheapest variant.  When writes are rare its closure degenerates
   toward "everyone", and availability slides from the Figure 7 value
   toward the naive Figure 8 value.  The ablation sweeps the write rate.

3. **Repair-time regularity** (Section 4.4).  With repair-time
   coefficients of variation below one, "sites will tend to recover in
   the same order as they failed", so the tracked scheme's head start
   over naive shrinks.  The ablation compares AC and NAC availability
   under exponential (cv = 1) and increasingly regular gamma repairs.
"""

from __future__ import annotations

from typing import Sequence

from ..device.cluster import ClusterConfig, ReplicatedCluster
from ..sim.failures import RepairDistribution
from ..types import SchemeName
from ..workload.generator import WorkloadSpec
from ..workload.runner import WorkloadRunner
from .report import ExperimentReport, Table

__all__ = [
    "ablation_voting_repair",
    "ablation_was_available_freshness",
    "ablation_repair_regularity",
]


def ablation_voting_repair(
    n: int = 5,
    rho: float = 0.1,
    horizon: float = 50_000.0,
    seed: int = 31,
) -> ExperimentReport:
    """Lazy (paper) versus eager (conventional) voting repair."""
    report = ExperimentReport(
        experiment_id="ablation-voting-repair",
        title="Voting: lazy per-block repair vs eager refresh on recovery",
    )
    table = Table(
        title=f"n={n}, rho={rho:g}, horizon={horizon:g}",
        columns=(
            "variant",
            "recovery msgs total",
            "recoveries",
            "lazy repairs",
            "availability",
        ),
        precision=4,
    )
    for eager in (False, True):
        cluster = ReplicatedCluster(
            ClusterConfig(
                scheme=SchemeName.VOTING,
                num_sites=n,
                num_blocks=32,
                failure_rate=rho,
                repair_rate=1.0,
                seed=seed,
                eager_repair=eager,
            )
        )
        runner = WorkloadRunner(
            cluster,
            WorkloadSpec(read_write_ratio=2.5, op_rate=1.0),
            origin_policy="random",
        )
        runner.run(horizon)
        recovery = cluster.meter.messages_for("recovery")
        table.add_row(
            "eager (conventional)" if eager else "lazy (paper)",
            recovery.mean * recovery.count if recovery.count else 0.0,
            recovery.count,
            cluster.protocol.lazy_repairs,
            cluster.availability(),
        )
    report.add_table(table)
    report.note(
        "expected: identical availability; the lazy variant spends zero "
        "recovery messages and shifts a much smaller cost into lazy "
        "per-block repairs during reads"
    )
    return report


def ablation_was_available_freshness(
    n: int = 3,
    rho: float = 0.2,
    write_rates: Sequence[float] = (0.01, 0.1, 1.0, 10.0),
    horizon: float = 100_000.0,
    seed: int = 32,
) -> ExperimentReport:
    """Availability of tracked AC as a function of W freshness."""
    report = ExperimentReport(
        experiment_id="ablation-was-available-freshness",
        title="Available copy: failure-tracked vs write-piggybacked W sets",
    )
    table = Table(
        title=f"n={n}, rho={rho:g}, horizon={horizon:g}",
        columns=(
            "write rate",
            "A sim (tracked)",
            "A sim (write-only W)",
            "A sim (naive)",
        ),
        precision=5,
    )
    for rate in write_rates:
        row = [rate]
        for scheme, track in (
            (SchemeName.AVAILABLE_COPY, True),
            (SchemeName.AVAILABLE_COPY, False),
            (SchemeName.NAIVE_AVAILABLE_COPY, True),
        ):
            cluster = ReplicatedCluster(
                ClusterConfig(
                    scheme=scheme,
                    num_sites=n,
                    num_blocks=16,
                    failure_rate=rho,
                    repair_rate=1.0,
                    seed=seed,
                    track_failures=track,
                )
            )
            runner = WorkloadRunner(
                cluster,
                WorkloadSpec(read_write_ratio=0.0, op_rate=rate),
            )
            runner.run(horizon)
            row.append(cluster.availability())
        table.add_row(*row)
    report.add_table(table)
    report.note(
        "expected: the tracked variant is insensitive to the write rate; "
        "the write-only variant approaches naive as writes become rare "
        "and approaches tracked as writes become frequent"
    )
    return report


def ablation_repair_regularity(
    n: int = 3,
    rho: float = 0.2,
    cvs: Sequence[float] = (1.0, 0.5, 0.25),
    horizon: float = 200_000.0,
    seed: int = 33,
) -> ExperimentReport:
    """Section 4.4's discussion: regular repairs erase AC's edge."""
    report = ExperimentReport(
        experiment_id="ablation-repair-regularity",
        title="Repair-time coefficient of variation vs the AC/NAC gap",
    )
    table = Table(
        title=f"n={n}, rho={rho:g}, horizon={horizon:g}",
        columns=("repair cv", "A sim (AC)", "A sim (NAC)", "gap"),
        precision=5,
    )
    for cv in cvs:
        sims = {}
        for scheme in (
            SchemeName.AVAILABLE_COPY,
            SchemeName.NAIVE_AVAILABLE_COPY,
        ):
            cluster = ReplicatedCluster(
                ClusterConfig(
                    scheme=scheme,
                    num_sites=n,
                    num_blocks=16,
                    failure_rate=rho,
                    repair_rate=1.0,
                    seed=seed,
                    repair_distribution=RepairDistribution(cv=cv),
                )
            )
            cluster.run_until(horizon)
            sims[scheme] = cluster.availability()
        gap = (
            sims[SchemeName.AVAILABLE_COPY]
            - sims[SchemeName.NAIVE_AVAILABLE_COPY]
        )
        table.add_row(
            cv,
            sims[SchemeName.AVAILABLE_COPY],
            sims[SchemeName.NAIVE_AVAILABLE_COPY],
            gap,
        )
    report.add_table(table)
    report.note(
        "expected: the gap shrinks as repairs become more regular "
        "(cv < 1), because the last site to fail tends to be the last "
        "to recover -- exactly the paper's argument for the naive scheme"
    )
    return report
