"""Cross-validation of the executable system against the analytic models.

The paper's evaluation is purely analytical; this repository also built
the system.  These experiments close the loop: the discrete-event
simulator runs the *actual protocol implementations* under Poisson
failures and a synthetic workload, and the measured availability and
per-operation transmission counts are compared against Section 4's
formulas and Section 5's cost models.  Agreement here is the strongest
evidence the protocol implementations, the Markov chains and the cost
models all describe the same system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.availability import scheme_availability
from ..analysis.traffic import traffic_model
from ..device.cluster import ClusterConfig, ReplicatedCluster
from ..types import AddressingMode, SchemeName
from ..workload.generator import WorkloadSpec
from ..workload.ops import OpKind
from ..workload.runner import WorkloadRunner
from .report import ExperimentReport, Table

__all__ = [
    "validate_availability",
    "validate_traffic",
    "ValidationSettings",
]


@dataclass(frozen=True)
class ValidationSettings:
    """Knobs for the simulation-versus-theory experiments."""

    horizon: float = 200_000.0
    seed: int = 2025
    num_blocks: int = 64
    op_rate: float = 2.0


def validate_availability(
    schemes: Sequence[SchemeName] = tuple(SchemeName),
    site_counts: Sequence[int] = (2, 3, 4),
    rhos: Sequence[float] = (0.05, 0.1, 0.2),
    settings: Optional[ValidationSettings] = None,
) -> ExperimentReport:
    """Simulated availability versus Section 4's exact values.

    A high operation rate is used for the available-copy run so the
    was-available sets stay current, matching the assumption behind the
    Figure 7 model (the default ``track_failures=True`` makes this exact
    regardless of the workload).
    """
    settings = settings or ValidationSettings()
    report = ExperimentReport(
        experiment_id="validation-availability",
        title="Simulated vs analytic availability",
    )
    table = Table(
        title=f"horizon={settings.horizon:g}, seed={settings.seed}",
        columns=(
            "scheme",
            "n",
            "rho",
            "analytic",
            "simulated",
            "abs error",
        ),
    )
    for scheme in schemes:
        for n in site_counts:
            for rho in rhos:
                cluster = ReplicatedCluster(
                    ClusterConfig(
                        scheme=scheme,
                        num_sites=n,
                        num_blocks=settings.num_blocks,
                        failure_rate=rho,
                        repair_rate=1.0,
                        seed=settings.seed,
                    )
                )
                cluster.run_until(settings.horizon)
                simulated = cluster.availability()
                analytic = scheme_availability(scheme, n, rho)
                table.add_row(
                    scheme.short,
                    n,
                    rho,
                    analytic,
                    simulated,
                    abs(analytic - simulated),
                )
    report.add_table(table)
    report.note(
        "errors shrink as 1/sqrt(horizon); the tests pin them below "
        "a few parts in a thousand"
    )
    return report


def validate_traffic(
    schemes: Sequence[SchemeName] = tuple(SchemeName),
    modes: Sequence[AddressingMode] = tuple(AddressingMode),
    n: int = 4,
    rho: float = 0.05,
    settings: Optional[ValidationSettings] = None,
) -> ExperimentReport:
    """Simulated per-operation transmissions versus Section 5's models."""
    settings = settings or ValidationSettings(horizon=50_000.0)
    report = ExperimentReport(
        experiment_id="validation-traffic",
        title=f"Simulated vs modelled transmissions (n={n}, rho={rho:g})",
    )
    table = Table(
        title=f"read:write = 2.5:1, horizon={settings.horizon:g}",
        columns=(
            "scheme",
            "network",
            "write sim",
            "write model",
            "read sim",
            "read model",
            "recovery sim",
            "recovery model",
        ),
        precision=3,
    )
    for mode in modes:
        for scheme in schemes:
            cluster = ReplicatedCluster(
                ClusterConfig(
                    scheme=scheme,
                    num_sites=n,
                    num_blocks=settings.num_blocks,
                    failure_rate=rho,
                    repair_rate=1.0,
                    addressing=mode,
                    seed=settings.seed,
                )
            )
            runner = WorkloadRunner(
                cluster,
                WorkloadSpec(
                    read_write_ratio=2.5, op_rate=settings.op_rate
                ),
            )
            result = runner.run(settings.horizon)
            model = traffic_model(scheme, n, rho, mode=mode)
            table.add_row(
                scheme.short,
                mode.value,
                result.mean_messages(OpKind.WRITE),
                model.write,
                result.mean_messages(OpKind.READ),
                model.read,
                cluster.meter.mean_messages("recovery"),
                model.recovery,
            )
    report.add_table(table)
    report.note(
        "simulated means condition on successful operations; the model's "
        "U conditions only on the local site being up, so small "
        "differences of O(rho^2) are expected"
    )
    return report
