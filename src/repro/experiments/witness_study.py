"""Witness extension study: trading data copies for vote-only sites.

Compares voting configurations with the same total number of sites but
different mixes of data copies and witnesses (the paper's reference
[10]): read availability (analytic + simulated), storage cost, and
write traffic.  The headline: a witness buys back most of the
availability a dropped data copy would have provided, at zero storage.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..analysis.witnesses import witness_voting_availability
from ..core.quorum import QuorumSpec
from ..errors import DeviceError
from ..core.voting import VotingProtocol
from ..device.site import Site
from ..net.network import Network
from ..net.traffic import TrafficMeter
from ..sim.engine import Simulator
from ..sim.failures import FailureRepairProcess
from ..sim.rng import RandomStreams
from ..sim.stats import TimeWeightedStat
from ..workload.generator import WorkloadGenerator, WorkloadSpec
from .report import ExperimentReport, Table

__all__ = ["witness_study", "build_witness_group", "simulate_witness_group"]


def build_witness_group(
    data_copies: int,
    witnesses: int,
    num_blocks: int = 16,
    block_size: int = 64,
) -> Tuple[VotingProtocol, Network]:
    """A voting group with the last ``witnesses`` sites vote-only."""
    n = data_copies + witnesses
    spec = QuorumSpec.majority(n)
    sites = [
        Site(
            i,
            num_blocks,
            block_size,
            weight=spec.weight_of(i),
            is_witness=i >= data_copies,
        )
        for i in range(n)
    ]
    network = Network(meter=TrafficMeter())
    return VotingProtocol(sites, network, spec=spec), network


def simulate_witness_group(
    data_copies: int,
    witnesses: int,
    rho: float,
    horizon: float = 100_000.0,
    seed: int = 101,
    write_rate: float = 2.0,
) -> float:
    """Measured read availability of a witness configuration.

    A write-heavy background workload keeps up data copies current (the
    assumption behind the analytic formula); availability is the
    time-weighted fraction during which the protocol can serve reads.
    """
    protocol, _network = build_witness_group(data_copies, witnesses)
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    failures = FailureRepairProcess(
        sim=sim,
        site_ids=protocol.site_ids,
        failure_rate=rho,
        repair_rate=1.0,
        streams=streams,
    )
    protocol.bind(failures)
    tracker = TimeWeightedStat(initial_value=1.0)

    def sample(_site, time):
        tracker.update(
            1.0 if protocol.is_available() else 0.0, at_time=time
        )

    failures.on_failure(sample)
    failures.on_repair(sample)

    generator = WorkloadGenerator(
        WorkloadSpec(read_write_ratio=0.0, op_rate=write_rate),
        num_blocks=protocol.num_blocks,
        streams=streams,
        name="witness-writes",
    )
    payload = b"\x44" * protocol.block_size

    def tick():
        data_up = [
            s for s in protocol.sites
            if not s.is_witness and s.is_available
        ]
        if data_up:
            try:
                protocol.write(
                    data_up[0].site_id,
                    generator.next_operation().block,
                    payload,
                )
            except DeviceError:  # quorum loss between check and write
                pass
        sim.schedule(generator.next_interarrival(), tick)

    sim.schedule(generator.next_interarrival(), tick)
    failures.start()
    sim.run(until=horizon)
    tracker.finalize(sim.now)
    return tracker.mean()


def witness_study(
    rho: float = 0.1,
    configurations: Sequence[Tuple[int, int]] = (
        (3, 0), (2, 1), (2, 0), (5, 0), (3, 2), (4, 1),
    ),
    simulate: bool = True,
    horizon: float = 100_000.0,
    seed: Optional[int] = 101,
) -> ExperimentReport:
    """Availability and cost of copy/witness mixes."""
    report = ExperimentReport(
        experiment_id="witness-study",
        title=f"Voting with witnesses (rho={rho:g})",
    )
    columns = ["data copies", "witnesses", "analytic availability",
               "storage (copies)"]
    if simulate:
        columns.insert(3, "simulated")
    table = Table(title="equal-weight majority, tie-break on a data copy",
                  columns=tuple(columns), precision=5)
    for data, wit in configurations:
        row = [data, wit, witness_voting_availability(data, wit, rho)]
        if simulate:
            row.append(
                simulate_witness_group(
                    data, wit, rho, horizon=horizon, seed=seed or 0
                )
            )
        row.append(data)
        table.add_row(*row)
    report.add_table(table)
    report.note(
        "a witness recovers most of the availability of the data copy "
        "it replaces while storing nothing -- e.g. 2 copies + 1 witness "
        "approaches 3 full copies"
    )
    return report
