"""Partition demonstration: why available copy needs a partition-free net.

Sections 3.2 and 6 of the paper: "the available copy algorithm does not
operate correctly in the presence of partitions", while "the voting
schemes obviate the concern for network partitions".  This experiment
makes both halves executable:

1. partition a 3-site group into {0} | {1, 2};
2. issue writes on *both* sides;
3. observe that under available copy both sides accept the writes
   (split brain -- two "available" copies of the same block diverge),
   while under voting the minority side refuses every operation and the
   block stays single-valued;
4. heal the partition and report the damage.

The divergence detector is the protocol's own
``consistency_report`` / version comparison.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.available_copy import AvailableCopyProtocol
from ..core.naive import NaiveAvailableCopyProtocol
from ..core.quorum import QuorumSpec
from ..core.voting import VotingProtocol
from ..device.site import Site
from ..errors import DeviceUnavailableError
from ..net.network import Network
from ..types import SchemeName
from .report import ExperimentReport, Table

__all__ = ["partition_demo", "run_partition_scenario"]

_BLOCK = 0
_BLOCK_SIZE = 32
_NUM_BLOCKS = 4


def _build(scheme: SchemeName) -> Tuple[object, Network]:
    network = Network()
    if scheme is SchemeName.VOTING:
        spec = QuorumSpec.majority(3)
        sites = [
            Site(i, _NUM_BLOCKS, _BLOCK_SIZE, weight=spec.weight_of(i))
            for i in range(3)
        ]
        return VotingProtocol(sites, network, spec=spec), network
    sites = [Site(i, _NUM_BLOCKS, _BLOCK_SIZE) for i in range(3)]
    if scheme is SchemeName.AVAILABLE_COPY:
        return AvailableCopyProtocol(sites, network), network
    return NaiveAvailableCopyProtocol(sites, network), network


def run_partition_scenario(scheme: SchemeName) -> dict:
    """Run the split-brain scenario; returns what happened."""
    protocol, network = _build(scheme)

    def fill(value: int) -> bytes:
        return bytes([value]) * _BLOCK_SIZE

    protocol.write(0, _BLOCK, fill(1))  # agreed value before the split
    network.partition([0], [1, 2])

    def attempt(origin: int, value: int) -> bool:
        try:
            protocol.write(origin, _BLOCK, fill(value))
            return True
        except DeviceUnavailableError:
            return False

    side_a_wrote = attempt(0, 2)   # minority side (site 0)
    side_b_wrote = attempt(1, 3)   # majority side (sites 1, 2)

    network.heal()
    versions = [s.block_version(_BLOCK) for s in protocol.sites]
    contents = [s.read_block(_BLOCK)[0] for s in protocol.sites]
    # True divergence (split brain): two sites that both consider
    # themselves available hold the SAME version number with DIFFERENT
    # contents -- irreconcilable by version comparison.  A merely
    # *stale* copy (lower version, as voting's minority site ends up
    # with) is benign: the next quorum operation repairs it.
    by_version = {}
    for site in protocol.sites:
        if not site.is_available:
            continue
        by_version.setdefault(
            site.block_version(_BLOCK), set()
        ).add(site.read_block(_BLOCK))
    diverged = any(len(values) > 1 for values in by_version.values())
    # post-heal reads: a quorum read must return one agreed value under
    # voting (and repairs the stale copy on the way)
    post_heal_reads = set()
    for origin in protocol.site_ids:
        try:
            post_heal_reads.add(protocol.read(origin, _BLOCK))
        except DeviceUnavailableError:  # pragma: no cover
            pass
    return {
        "post_heal_reads_agree": len(post_heal_reads) == 1,
        "scheme": scheme,
        "side_a_wrote": side_a_wrote,
        "side_b_wrote": side_b_wrote,
        "versions": versions,
        "contents": contents,
        "diverged": diverged,
    }


def partition_demo() -> ExperimentReport:
    """The split-brain table for all three schemes."""
    report = ExperimentReport(
        experiment_id="partition-demo",
        title="Network partition: voting is safe, available copy is not",
    )
    table = Table(
        title="partition {0} | {1,2}; concurrent writes on both sides",
        columns=(
            "scheme",
            "minority write accepted",
            "majority write accepted",
            "split brain",
            "post-heal reads agree",
        ),
    )
    outcomes: List[dict] = []
    for scheme in SchemeName:
        outcome = run_partition_scenario(scheme)
        outcomes.append(outcome)
        table.add_row(
            scheme.short,
            outcome["side_a_wrote"],
            outcome["side_b_wrote"],
            outcome["diverged"],
            outcome["post_heal_reads_agree"],
        )
    report.add_table(table)
    report.note(
        "voting refuses the minority side's write (no quorum), so the "
        "block never diverges; both available-copy schemes accept "
        "writes on each side and split brain -- exactly why the paper "
        "assumes a partition-free network for them"
    )
    return report
