"""Regeneration of the paper's result figures (Figures 9-12).

Each function returns an :class:`~repro.experiments.report.ExperimentReport`
containing the exact series the paper plots.  We do not chase the paper's
pixel values -- the curves are analytic, so our numbers *are* the curves;
the tests assert the qualitative shape the paper reports (who wins, by
how much, and where the schemes become indistinguishable).

* Figure 9 -- availabilities of three available copies (tracked and
  naive) against six voting copies, rho in [0, 0.20].
* Figure 10 -- four available copies against eight voting copies.
* Figure 11 -- multicast traffic per (one write + x reads) at rho = 0.05
  for x in {1, 2, 4}, versus the number of sites.
* Figure 12 -- the same comparison on a unique-addressing network.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..analysis.availability import (
    available_copy_availability,
    naive_availability,
    voting_availability,
)
from ..analysis.traffic import access_cost
from ..types import AddressingMode, SchemeName
from .report import ExperimentReport, Table

__all__ = [
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "availability_comparison",
    "traffic_comparison",
]

#: The rho grid of Figures 9-10 ("rho varies between 0 and 0.20").
DEFAULT_RHO_GRID = tuple(np.linspace(0.0, 0.20, 41))

#: Read-to-write ratios plotted in Figures 11-12 ("values of x from 1 to
#: 4, reflecting read to write ratios of 1:1, 2:1, 4:1").
DEFAULT_READ_RATIOS = (1.0, 2.0, 4.0)

#: Site counts for the traffic figures.
DEFAULT_SITE_COUNTS = tuple(range(2, 11))

#: "a typical value of rho (rho = 0.05)".
TYPICAL_RHO = 0.05


def availability_comparison(
    ac_copies: int,
    voting_copies: int,
    rhos: Optional[Iterable[float]] = None,
) -> Table:
    """Availability series: AC and NAC with ``ac_copies`` vs voting."""
    rhos = DEFAULT_RHO_GRID if rhos is None else tuple(rhos)
    table = Table(
        title=(
            f"Availability: {ac_copies} available copies vs "
            f"{voting_copies} voting copies"
        ),
        columns=(
            "rho",
            f"A_V({voting_copies})",
            f"A_A({ac_copies})",
            f"A_NA({ac_copies})",
        ),
    )
    for rho in rhos:
        table.add_row(
            float(rho),
            voting_availability(voting_copies, float(rho)),
            available_copy_availability(ac_copies, float(rho)),
            naive_availability(ac_copies, float(rho)),
        )
    return table


def figure9(rhos: Optional[Iterable[float]] = None) -> ExperimentReport:
    """Figure 9: three available copies against six voting copies."""
    report = ExperimentReport(
        experiment_id="figure-9",
        title="Availabilities for Three Available Copies and Six Voting Copies",
    )
    report.add_table(availability_comparison(3, 6, rhos))
    report.note(
        "expected shape: both available-copy curves dominate voting "
        "everywhere; AC and NAC indistinguishable for rho < 0.10"
    )
    return report


def figure10(rhos: Optional[Iterable[float]] = None) -> ExperimentReport:
    """Figure 10: four available copies against eight voting copies."""
    report = ExperimentReport(
        experiment_id="figure-10",
        title="Availabilities for Four Available Copies and Eight Voting Copies",
    )
    report.add_table(availability_comparison(4, 8, rhos))
    report.note(
        "expected shape: same ordering as Figure 9 with a wider margin"
    )
    return report


def traffic_comparison(
    mode: AddressingMode,
    rho: float = TYPICAL_RHO,
    site_counts: Sequence[int] = DEFAULT_SITE_COUNTS,
    read_ratios: Sequence[float] = DEFAULT_READ_RATIOS,
) -> Table:
    """Transmissions per (one write + x reads) across site counts.

    Voting gets one series per read ratio (its reads cost a quorum
    collection each); the available-copy schemes read locally, so their
    cost is independent of x and appears once.
    """
    columns = ["n"]
    columns += [f"MCV x={x:g}" for x in read_ratios]
    columns += ["AC (any x)", "NAC (any x)"]
    table = Table(
        title=(
            f"Traffic per write + x reads, {mode.value} network, "
            f"rho={rho:g}"
        ),
        columns=columns,
        precision=3,
    )
    for n in site_counts:
        row = [n]
        for x in read_ratios:
            row.append(access_cost(SchemeName.VOTING, n, rho, x, mode=mode))
        row.append(
            access_cost(SchemeName.AVAILABLE_COPY, n, rho, 0.0, mode=mode)
        )
        row.append(
            access_cost(
                SchemeName.NAIVE_AVAILABLE_COPY, n, rho, 0.0, mode=mode
            )
        )
        table.add_row(*row)
    return table


def figure11(
    rho: float = TYPICAL_RHO,
    site_counts: Sequence[int] = DEFAULT_SITE_COUNTS,
    read_ratios: Sequence[float] = DEFAULT_READ_RATIOS,
) -> ExperimentReport:
    """Figure 11: multicast traffic comparison."""
    report = ExperimentReport(
        experiment_id="figure-11",
        title="Multi-cast Results (high-level transmissions)",
    )
    report.add_table(
        traffic_comparison(
            AddressingMode.MULTICAST, rho, site_counts, read_ratios
        )
    )
    report.note(
        "expected shape: naive available copy constant at 1; available "
        "copy ~ n(1-rho); voting grows with both n and the read ratio"
    )
    return report


def figure12(
    rho: float = TYPICAL_RHO,
    site_counts: Sequence[int] = DEFAULT_SITE_COUNTS,
    read_ratios: Sequence[float] = DEFAULT_READ_RATIOS,
) -> ExperimentReport:
    """Figure 12: unique-addressing traffic comparison."""
    report = ExperimentReport(
        experiment_id="figure-12",
        title="Unique Address Results (high-level transmissions)",
    )
    report.add_table(
        traffic_comparison(
            AddressingMode.UNIQUE, rho, site_counts, read_ratios
        )
    )
    report.note(
        "expected shape: same ordering as Figure 11 with every scheme "
        "paying ~n-1 extra per broadcast; the relative differences are "
        "amplified, as Section 5.2 states"
    )
    return report
