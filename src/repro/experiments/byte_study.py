"""Message-size study: Section 5's "slightly less pronounced" remark.

Rebuilds the Figure 11/12 comparison in **bytes** and reports, for each
group size, the ratio by which voting out-spends naive available copy
in transmissions versus in bytes.  The paper predicts the byte ratio is
smaller (voting's extra messages are mostly small votes, while naive's
single write carries a whole block) but that the ordering is unchanged.
The experiment also cross-checks the byte model against the simulator's
byte meter.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.byte_traffic import byte_access_cost, byte_traffic_model
from ..analysis.traffic import access_cost
from ..device.cluster import ClusterConfig, ReplicatedCluster
from ..net.sizes import SizeModel
from ..types import AddressingMode, SchemeName
from ..workload.generator import WorkloadSpec
from ..workload.runner import WorkloadRunner
from .report import ExperimentReport, Table

__all__ = ["byte_traffic_study"]


def byte_traffic_study(
    rho: float = 0.05,
    site_counts: Sequence[int] = (2, 3, 4, 5, 8),
    reads_per_write: float = 2.5,
    mode: AddressingMode = AddressingMode.MULTICAST,
    block_bytes: int = 512,
    simulate: bool = True,
    horizon: float = 20_000.0,
    seed: int = 91,
) -> ExperimentReport:
    """Bytes-vs-messages comparison across group sizes."""
    sizes = SizeModel(block_bytes=block_bytes)
    report = ExperimentReport(
        experiment_id="byte-traffic-study",
        title=(
            "Traffic measured in bytes vs transmissions "
            f"({mode.value}, rho={rho:g}, x={reads_per_write:g})"
        ),
    )
    table = Table(
        title=f"per (1 write + {reads_per_write:g} reads); "
              f"block={block_bytes}B header={sizes.header_bytes}B",
        columns=(
            "n",
            "MCV msgs",
            "NAC msgs",
            "msg ratio",
            "MCV bytes",
            "NAC bytes",
            "byte ratio",
        ),
        precision=2,
    )
    for n in site_counts:
        mcv_msgs = access_cost(SchemeName.VOTING, n, rho,
                               reads_per_write, mode=mode)
        nac_msgs = access_cost(SchemeName.NAIVE_AVAILABLE_COPY, n, rho,
                               reads_per_write, mode=mode)
        mcv_bytes = byte_access_cost(SchemeName.VOTING, n, rho,
                                     reads_per_write, mode=mode,
                                     size_model=sizes)
        nac_bytes = byte_access_cost(SchemeName.NAIVE_AVAILABLE_COPY, n,
                                     rho, reads_per_write, mode=mode,
                                     size_model=sizes)
        table.add_row(
            n,
            mcv_msgs,
            nac_msgs,
            mcv_msgs / nac_msgs,
            mcv_bytes,
            nac_bytes,
            mcv_bytes / nac_bytes,
        )
    report.add_table(table)

    if simulate:
        check = Table(
            title="simulation cross-check (mean bytes per write)",
            columns=("scheme", "simulated", "model"),
            precision=1,
        )
        for scheme in SchemeName:
            cluster = ReplicatedCluster(
                ClusterConfig(
                    scheme=scheme, num_sites=4, num_blocks=32,
                    block_size=block_bytes, failure_rate=rho,
                    repair_rate=1.0, addressing=mode, seed=seed,
                )
            )
            runner = WorkloadRunner(
                cluster,
                WorkloadSpec(read_write_ratio=reads_per_write, op_rate=2.0),
            )
            runner.run(horizon)
            model = byte_traffic_model(scheme, 4, rho, mode=mode,
                                       size_model=sizes)
            check.add_row(
                scheme.short,
                cluster.meter.mean_bytes("write"),
                model.write,
            )
        report.add_table(check)

    report.note(
        "the paper's Section 5 remark: byte-level differences are "
        "'similar ... though slightly less pronounced' -- the byte ratio "
        "column must stay above 1 but below the message ratio column"
    )
    return report
