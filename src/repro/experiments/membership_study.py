"""Dynamic membership study: view changes under live traffic and faults.

Two questions the paper's fixed-group analysis cannot answer:

1. **Is reconfiguration safe under fire?**  A seeded chaos schedule per
   scheme runs planned adds/removes/replaces (plus crash-triggered
   replacements) *while* clients read and write and faults are injected,
   then checks the full history for read-latest-write violations.
2. **What does the quorum-drift hazard look like?**  For raw adjacent
   views (no joint-quorum window) we exhibit, per group size, the two
   disjoint write quorums that make naive reconfiguration unsafe --
   the constructive witness the epoch machinery exists to forbid.

The state-transfer cost of each joiner's catch-up rides through the
normal traffic meter (category ``state-transfer-request``/``-reply``),
so the study also reports what reconfiguration cost in messages and
bytes next to the foreground workload it competed with.
"""

from __future__ import annotations

from typing import Sequence

from ..faults.chaos import ChaosConfig, run_chaos
from ..membership import View, disjoint_write_quorums
from ..net.message import MessageCategory
from ..types import SchemeName
from .report import ExperimentReport, Table

__all__ = ["membership_study"]


def _hazard_table(sizes: Sequence[int]) -> Table:
    table = Table(
        title="quorum drift across adjacent views (no joint window)",
        columns=("sites", "transition", "old write quorum",
                 "new write quorum", "intersect?"),
    )
    for n in sizes:
        old = View.majority(0, range(n))
        new = old.with_removed(0)
        witness = disjoint_write_quorums(old, new)
        if witness is None:
            table.add_row(n, f"remove site 0 ({n}->{n - 1})",
                          "-", "-", "always")
        else:
            old_q, new_q = witness
            table.add_row(
                n, f"remove site 0 ({n}->{n - 1})",
                "{" + ",".join(str(s) for s in sorted(old_q)) + "}",
                "{" + ",".join(str(s) for s in sorted(new_q)) + "}",
                "NO",
            )
    return table


def membership_study(
    seed: int = 0,
    operations: int = 300,
    reconfigure_rate: float = 0.08,
    spare_sites: int = 4,
) -> ExperimentReport:
    """Reconfiguration under chaos, plus the hazard it must avoid."""
    report = ExperimentReport(
        experiment_id="membership-study",
        title="Epoch-based dynamic membership under live traffic",
    )
    report.add_table(_hazard_table((3, 5, 7)))

    table = Table(
        title=(
            f"seeded chaos with reconfiguration (seed={seed}, "
            f"{operations} ops, reconfigure rate {reconfigure_rate:g})"
        ),
        columns=("scheme", "view changes", "kinds", "final epoch",
                 "epoch fences", "writes ok", "reads ok",
                 "catch-up msgs", "catch-up bytes", "verdict"),
    )
    for scheme in SchemeName:
        config = ChaosConfig(
            scheme=scheme,
            seed=seed,
            operations=operations,
            reconfigure_rate=reconfigure_rate,
            spare_sites=spare_sites,
        )
        result = run_chaos(config)
        kinds = "/".join(
            f"{k}:{v}" for k, v in sorted(result.reconfigurations.items())
            if v
        )
        table.add_row(
            scheme.short,
            result.view_changes,
            kinds or "-",
            result.final_epoch,
            result.epoch_fences,
            f"{result.writes_ok}/{result.writes_ok + result.writes_failed}",
            f"{result.reads_ok}/{result.reads_ok + result.reads_failed}",
            result.catchup_messages,
            result.catchup_bytes,
            "OK" if result.ok else "VIOLATION",
        )
    report.add_table(table)
    report.note(
        "adjacent majority views admit disjoint write quorums (the "
        "drift hazard); the joint-quorum window plus epoch fencing "
        "keeps every checked history violation-free while the group "
        "adds, removes and replaces sites under injected faults"
    )
    return report
