"""Heterogeneous-site study: unequal failure rates across the group.

Section 4.1 restricts the paper's analysis to sites with equal failure
and repair rates.  This experiment lifts the restriction with the exact
subset-chain models of :mod:`repro.analysis.heterogeneous` and verifies
them against the simulator running per-site rates.

Headline observations (all pinned by tests):

* one very reliable copy nearly saturates the available-copy schemes'
  availability (the group is down only when *it* is down and the rest
  already were), while voting still needs a majority;
* for even-sized voting groups, the tie-breaking extra weight belongs
  on the most reliable site.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..analysis.heterogeneous import (
    heterogeneous_available_copy_availability,
    heterogeneous_naive_availability,
    heterogeneous_voting_availability,
)
from ..core.available_copy import AvailableCopyProtocol
from ..core.naive import NaiveAvailableCopyProtocol
from ..core.quorum import QuorumSpec
from ..core.voting import VotingProtocol
from ..device.site import Site
from ..exec import ParallelRunner, Task
from ..net.network import Network
from ..sim.engine import Simulator
from ..sim.failures import FailureRepairProcess
from ..sim.rng import RandomStreams
from ..sim.stats import TimeWeightedStat
from ..types import SchemeName
from .report import ExperimentReport, Table

__all__ = ["heterogeneity_study", "simulate_heterogeneous"]

DEFAULT_MIXES: Tuple[Tuple[float, ...], ...] = (
    (0.2, 0.2, 0.2),
    (0.05, 0.2, 0.35),
    (0.01, 0.3, 0.3),
    (0.001, 0.5, 0.5),
)


def simulate_heterogeneous(
    scheme: SchemeName,
    rhos: Sequence[float],
    horizon: float = 150_000.0,
    seed: int = 88,
) -> float:
    """Simulated availability with per-site failure rates (mu = 1)."""
    n = len(rhos)
    sim = Simulator()
    network = Network()
    if scheme is SchemeName.VOTING:
        spec = QuorumSpec.majority(n)
        sites = [Site(i, 4, 16, weight=spec.weight_of(i)) for i in range(n)]
        protocol = VotingProtocol(sites, network, spec=spec)
    elif scheme is SchemeName.AVAILABLE_COPY:
        sites = [Site(i, 4, 16) for i in range(n)]
        protocol = AvailableCopyProtocol(sites, network)
    else:
        sites = [Site(i, 4, 16) for i in range(n)]
        protocol = NaiveAvailableCopyProtocol(sites, network)
    rates: Dict[int, float] = {i: float(rhos[i]) for i in range(n)}
    process = FailureRepairProcess(
        sim, list(range(n)), failure_rate=rates, repair_rate=1.0,
        streams=RandomStreams(seed=seed),
    )
    protocol.bind(process)
    tracker = TimeWeightedStat(initial_value=1.0)

    def sample(_site, time):
        tracker.update(1.0 if protocol.is_available() else 0.0, time)

    process.on_failure(sample)
    process.on_repair(sample)
    process.start()
    sim.run(until=horizon)
    tracker.finalize(sim.now)
    return tracker.mean()


def _simulate_cell(task: Task) -> float:
    """Pool worker: one simulated (scheme, mix) grid cell.

    The cell seed travels in the payload (every cell intentionally uses
    the caller's fixed seed, as the serial path always did), so jobs=N
    reproduces the serial table bit for bit.
    """
    scheme, mix, horizon, seed = task.payload
    return simulate_heterogeneous(scheme, mix, horizon, seed)


def heterogeneity_study(
    mixes: Sequence[Sequence[float]] = DEFAULT_MIXES,
    simulate: bool = True,
    horizon: float = 150_000.0,
    seed: int = 88,
    jobs: Optional[int] = None,
) -> ExperimentReport:
    """Availability of rate mixes under all three schemes."""
    report = ExperimentReport(
        experiment_id="heterogeneity-study",
        title="Unequal site failure rates (mu = 1 everywhere)",
    )
    columns = ["per-site rhos", "MCV", "AC", "NAC"]
    if simulate:
        columns += ["MCV sim", "AC sim", "NAC sim"]
    table = Table(
        title="exact subset-chain models"
        + (" + simulation" if simulate else ""),
        columns=tuple(columns),
        precision=5,
    )
    clean_mixes = [tuple(float(r) for r in mix) for mix in mixes]
    scheme_order = (
        SchemeName.VOTING,
        SchemeName.AVAILABLE_COPY,
        SchemeName.NAIVE_AVAILABLE_COPY,
    )
    simulated: Dict[Tuple[SchemeName, Tuple[float, ...]], float] = {}
    if simulate:
        cells = [
            (scheme, mix, horizon, seed)
            for mix in clean_mixes
            for scheme in scheme_order
        ]
        runner = ParallelRunner(jobs=jobs, name="heterogeneity")
        results = runner.map(_simulate_cell, cells, namespace="cell")
        simulated = {
            (scheme, mix): value
            for (scheme, mix, _h, _s), value in zip(cells, results)
        }
    for mix in clean_mixes:
        row = [
            "/".join(f"{r:g}" for r in mix),
            heterogeneous_voting_availability(mix),
            heterogeneous_available_copy_availability(mix),
            heterogeneous_naive_availability(mix),
        ]
        if simulate:
            row += [simulated[(scheme, mix)] for scheme in scheme_order]
        table.add_row(*row)
    report.add_table(table)
    report.note(
        "the more the reliability concentrates in one copy, the larger "
        "the available-copy schemes' lead: a single golden copy keeps "
        "them in service, while voting still needs a flaky partner"
    )
    return report
