"""Registry of every reproducible experiment.

Each entry maps an experiment id to a zero-argument callable returning an
:class:`~repro.experiments.report.ExperimentReport`.  The benchmark
harness, the examples and ``run_all`` iterate over this table, so adding
an experiment in one place exposes it everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..exec import ParallelRunner, Task

from .ablations import (
    ablation_repair_regularity,
    ablation_voting_repair,
    ablation_was_available_freshness,
)
from .batching_study import batching_study
from .byte_study import byte_traffic_study
from .figures import figure9, figure10, figure11, figure12
from .heterogeneity_study import heterogeneity_study
from .membership_study import membership_study
from .observability_demo import observability_demo
from .partitions import partition_demo
from .policy_study import policy_study
from .reliability_study import reliability_study
from .serial_repair_study import serial_repair_study
from .report import ExperimentReport
from .state_diagrams import figure7_8_diagrams
from .summary import conclusions_summary
from .theorem import theorem41
from .validation import validate_availability, validate_traffic
from .witness_study import witness_study

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: Dict[str, Callable[[], ExperimentReport]] = {
    "figure-9": figure9,
    "figure-10": figure10,
    "figure-11": figure11,
    "figure-12": figure12,
    "figures-7-8": figure7_8_diagrams,
    "theorem-4.1": theorem41,
    "validation-availability": validate_availability,
    "validation-traffic": validate_traffic,
    "reliability-study": reliability_study,
    "byte-traffic-study": byte_traffic_study,
    "batching-study": batching_study,
    "witness-study": witness_study,
    "partition-demo": partition_demo,
    "serial-repair-study": serial_repair_study,
    "heterogeneity-study": heterogeneity_study,
    "membership-study": membership_study,
    "policy-study": policy_study,
    "observability-demo": observability_demo,
    "conclusions-summary": conclusions_summary,
    "ablation-voting-repair": ablation_voting_repair,
    "ablation-was-available-freshness": ablation_was_available_freshness,
    "ablation-repair-regularity": ablation_repair_regularity,
}


def run_experiment(experiment_id: str) -> ExperimentReport:
    """Run one experiment by id."""
    try:
        factory = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return factory()


def _run_by_id(task: Task) -> ExperimentReport:
    """Pool worker: run the experiment named by the task payload."""
    return run_experiment(task.payload)


def run_all(
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
) -> List[ExperimentReport]:
    """Run every registered experiment; reports in registry order.

    ``jobs=N`` fans the experiments out over N worker processes (they
    are independent, deterministic functions); the returned list is in
    registry order either way.
    """
    runner = runner if runner is not None else ParallelRunner(
        jobs=jobs, name="experiments"
    )
    return runner.map(_run_by_id, list(EXPERIMENTS), namespace="experiment")
