"""The observability layer, demonstrated on one traced workload run.

Runs :func:`repro.obs.traced_workload` for each scheme and reports what
the instrumentation saw: span counts per layer, the per-operation
message means from the unified registry side by side with the
:class:`~repro.net.traffic.TrafficMeter` figures they must equal, and
the workload outcome counters.  The table doubles as living proof that
the two accounting paths -- span-traced operations and the legacy meter
-- agree on every scheme.
"""

from __future__ import annotations

from ..obs import traced_workload
from ..types import SchemeName
from .report import ExperimentReport, Table

__all__ = ["observability_demo"]


def observability_demo(
    num_sites: int = 5,
    rho: float = 0.05,
    horizon: float = 2_000.0,
    seed: int = 0,
) -> ExperimentReport:
    """One traced run per scheme; spans, metrics and their agreement."""
    report = ExperimentReport(
        experiment_id="observability-demo",
        title=(
            f"unified observability (n={num_sites}, rho={rho:g}, "
            f"horizon={horizon:g}, seed={seed})"
        ),
    )
    spans = Table(
        title="spans per layer (one traced run per scheme)",
        columns=("scheme", "device", "protocol", "net", "scrub", "total"),
        precision=0,
    )
    agreement = Table(
        title="per-op message means: registry histograms vs traffic meter",
        columns=("scheme", "op", "registry mean", "meter mean", "ops"),
        precision=4,
    )
    for scheme in SchemeName:
        run = traced_workload(
            scheme=scheme,
            num_sites=num_sites,
            rho=rho,
            horizon=horizon,
            seed=seed,
        )
        layers = run.obs.tracer.layers()
        spans.add_row(
            scheme.short,
            layers.get("device", 0),
            layers.get("protocol", 0),
            layers.get("net", 0),
            layers.get("scrub", 0),
            len(run.obs.tracer),
        )
        meter = run.cluster.meter
        for name, hist in run.obs.registry.histograms():
            if "outcome=ok" not in name or not hist.count:
                continue
            op = "read" if "op=read" in name else "write"
            agreement.add_row(
                scheme.short,
                op,
                hist.mean,
                meter.mean_messages(op),
                hist.count,
            )
    report.add_table(spans)
    report.add_table(agreement)
    report.note(
        "registry means come from workload.messages histograms; meter "
        "means from TrafficMeter.record brackets inside the protocols."
    )
    report.note(
        "meter means can sit slightly above the registry's when the "
        "closing device burst (not part of the workload) added "
        "operations; identical workloads always agree exactly."
    )
    return report
