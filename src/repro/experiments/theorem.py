"""Theorem 4.1 as an experiment.

The theorem: ``n`` copies under available copy are more available than
``2n - 1`` (equivalently ``2n``) copies under majority voting, for every
failure-to-repair ratio ``rho <= 1``.  The experiment checks it three
ways -- directly on the exact availabilities, through the paper's bound
chain (inequality (5) against the binomial voting upper bound), and via
the induction-step sufficient condition (inequality (6)).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..analysis.availability import (
    available_copy_availability,
    voting_availability,
)
from ..analysis.bounds import (
    available_copy_lower_bound,
    sufficient_condition_holds,
    voting_upper_bound,
)
from .report import ExperimentReport, Table

__all__ = ["theorem41"]

DEFAULT_COPIES = (2, 3, 4, 5, 6, 7, 8)
DEFAULT_RHOS = tuple(np.linspace(0.05, 1.0, 20))


def theorem41(
    copies: Sequence[int] = DEFAULT_COPIES,
    rhos: Optional[Iterable[float]] = None,
) -> ExperimentReport:
    """Verify Theorem 4.1 over a grid of group sizes and rhos."""
    rhos = DEFAULT_RHOS if rhos is None else tuple(rhos)
    report = ExperimentReport(
        experiment_id="theorem-4.1",
        title="A_A(n) > A_V(2n-1) = A_V(2n) for all rho <= 1",
    )
    direct = Table(
        title="Direct comparison of exact availabilities",
        columns=("n", "rho", "A_A(n)", "A_V(2n-1)", "A_V(2n)", "holds"),
    )
    violations = 0
    for n in copies:
        for rho in rhos:
            rho = float(rho)
            a_ac = available_copy_availability(n, rho)
            a_v_odd = voting_availability(2 * n - 1, rho)
            a_v_even = voting_availability(2 * n, rho)
            holds = a_ac > a_v_odd
            violations += not holds
            direct.add_row(n, rho, a_ac, a_v_odd, a_v_even, holds)
    report.add_table(direct)

    bound_chain = Table(
        title="Bound chain: lower bound (5) vs voting upper bound",
        columns=(
            "n",
            "rho",
            "AC lower bound",
            "MCV upper bound",
            "bound separates",
            "condition (6)",
        ),
    )
    for n in copies:
        for rho in (0.25, 0.5, 0.75, 1.0):
            lower = available_copy_lower_bound(n, rho)
            upper = voting_upper_bound(2 * n - 1, rho)
            bound_chain.add_row(
                n,
                rho,
                lower,
                upper,
                lower > upper,
                sufficient_condition_holds(n, rho),
            )
    report.add_table(bound_chain)
    report.note(
        f"violations of the theorem on the grid: {violations} (expected 0)"
    )
    report.note(
        "the bound chain separates for n >= 4 as in the paper's proof; "
        "small n are covered by the direct comparison"
    )
    return report
