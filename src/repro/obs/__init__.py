"""Unified observability: structured traces and a metrics registry.

The paper's claims are quantitative (availability in Section 4, traffic
in Section 5); this package is the measurement substrate that keeps the
repository honest about them.  Two halves:

* :mod:`repro.obs.trace` -- span-style tracing of one operation's path
  through device -> protocol -> network (plus scrub and chaos events),
  exportable as JSON lines; off by default via :data:`NULL_TRACER`.
* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges and sim-time histograms into which the existing stat families
  (traffic meter, cache stats, fault stats) register, so one snapshot
  shows the whole picture.

:mod:`repro.obs.wiring` connects both to a simulated cluster in one
call; ``python -m repro metrics`` is the CLI surface.
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    TRACE_SCHEMA_VERSION,
    Tracer,
    load_trace,
    validate_trace_record,
)
from .wiring import (
    Observability,
    TracedRun,
    observe_cluster,
    register_cache,
    register_device,
    register_protocol,
    register_traffic_meter,
    traced_workload,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanRecord",
    "TRACE_SCHEMA_VERSION",
    "load_trace",
    "validate_trace_record",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
    "Observability",
    "TracedRun",
    "observe_cluster",
    "register_cache",
    "register_device",
    "register_protocol",
    "register_traffic_meter",
    "traced_workload",
]
