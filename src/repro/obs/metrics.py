"""A registry of counters, gauges and sim-time histograms.

The repository grew several disjoint counter families --
:class:`~repro.net.traffic.TrafficMeter`,
:class:`~repro.device.cache.CacheStats`,
:class:`~repro.device.reliable.FaultStats`,
:class:`~repro.device.interface.DeviceStats` -- each with its own
snapshot idiom.  :class:`MetricsRegistry` unifies them: native metrics
(:class:`Counter` / :class:`Gauge` / :class:`Histogram`, labelled
``per protocol x op kind x outcome``) live in the registry, and the
legacy families register as *sources* -- callables collected lazily at
:meth:`MetricsRegistry.snapshot` time -- so one call renders the whole
instrumentation picture.

Snapshots follow the :class:`~repro.net.traffic.TrafficSnapshot`
conventions: immutable, and ``later.delta(earlier)`` yields what changed
between two instants with zero-valued entries dropped.
"""

from __future__ import annotations

import json
from typing import (
    Callable,
    Dict,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
]

#: Default sim-time latency buckets (upper bounds; +inf is implicit).
#: Protocol rounds are instantaneous in simulated time, so the low
#: buckets separate "no backoff" from retried operations whose
#: exponential backoff advanced the clock.
DEFAULT_BUCKETS = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0)

Labels = Tuple[Tuple[str, str], ...]


def _labelkey(labels: Mapping[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_name(name: str, labels: Labels) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. sites currently up)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with count/sum (sim-time latencies).

    ``buckets`` are upper bounds; an implicit +inf bucket catches the
    rest.  ``mean`` comes from the exact running sum, not the buckets.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must increase: {buckets!r}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsSnapshot:
    """Immutable flat view ``rendered-name -> value`` of a registry."""

    def __init__(self, values: Mapping[str, float]) -> None:
        self._values = dict(values)

    @property
    def values(self) -> Dict[str, float]:
        return dict(self._values)

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What changed between ``earlier`` and this snapshot.

        Matches :meth:`repro.net.traffic.TrafficSnapshot.delta`: values
        subtract pointwise (absent treated as 0) and unchanged entries
        are dropped.
        """
        names = set(self._values) | set(earlier._values)
        return MetricsSnapshot({
            name: diff
            for name in names
            if (diff := self._values.get(name, 0.0)
                - earlier._values.get(name, 0.0))
        })

    def to_json(self) -> str:
        return json.dumps(self._values, sort_keys=True)

    def render(self, out: Optional[IO[str]] = None) -> str:
        """Aligned plain-text rendering, sorted by metric name."""
        if not self._values:
            return "(no metrics)"
        width = max(len(name) for name in self._values)
        lines = [
            f"{name.ljust(width)}  {value:g}"
            for name, value in sorted(self._values.items())
        ]
        text = "\n".join(lines)
        if out is not None:
            print(text, file=out)
        return text


class MetricsRegistry:
    """Get-or-create metric store plus pluggable snapshot sources."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}
        self._sources: Dict[str, Callable[[], Mapping[str, float]]] = {}

    # -- native metrics -----------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _labelkey(labels))
        if key not in self._counters:
            self._check_free(name, labels, self._counters)
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _labelkey(labels))
        if key not in self._gauges:
            self._check_free(name, labels, self._gauges)
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _labelkey(labels))
        if key not in self._histograms:
            self._check_free(name, labels, self._histograms)
            self._histograms[key] = Histogram(buckets)
        return self._histograms[key]

    def _check_free(self, name, labels, own_family) -> None:
        """One name belongs to one metric type (labels vary freely)."""
        for family in (self._counters, self._gauges, self._histograms):
            if family is own_family:
                continue
            if any(n == name for n, _ in family):
                raise ValueError(
                    f"metric name {name!r} already used by another type"
                )

    # -- legacy stat families -------------------------------------------------

    def register_source(
        self, prefix: str, collect: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register a lazy source collected at snapshot time.

        ``collect()`` returns ``suffix -> value``; entries appear in
        snapshots as ``"<prefix>.<suffix>"``.  Re-registering a prefix
        replaces the source (the common case: a fresh run of the same
        experiment).
        """
        self._sources[prefix] = collect

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """One flat, immutable view over metrics and sources."""
        values: Dict[str, float] = {}
        for (name, labels), counter in self._counters.items():
            values[_render_name(name, labels)] = counter.value
        for (name, labels), gauge in self._gauges.items():
            values[_render_name(name, labels)] = gauge.value
        for (name, labels), hist in self._histograms.items():
            base = _render_name(name, labels)
            values[f"{base}.count"] = float(hist.count)
            values[f"{base}.sum"] = hist.sum
            values[f"{base}.mean"] = hist.mean
        for prefix, collect in self._sources.items():
            for suffix, value in collect().items():
                values[f"{prefix}.{suffix}"] = float(value)
        return MetricsSnapshot(values)

    def render(self) -> str:
        return self.snapshot().render()

    # -- introspection --------------------------------------------------------

    def histograms(self) -> List[Tuple[str, Histogram]]:
        """Rendered-name/histogram pairs (tests and reports use this)."""
        return [
            (_render_name(name, labels), hist)
            for (name, labels), hist in sorted(self._histograms.items())
        ]
