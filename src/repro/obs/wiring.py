"""Wire the observability layer onto the existing stack.

Everything here is glue: the tracer plugs into the
:class:`~repro.net.network.Network` (whence the protocols and the scrub
inherit it), and the scattered counter families --
:class:`~repro.net.traffic.TrafficMeter`,
:class:`~repro.device.interface.DeviceStats`,
:class:`~repro.device.reliable.FaultStats`,
:class:`~repro.device.cache.CacheStats` -- register as snapshot sources
on one :class:`~repro.obs.metrics.MetricsRegistry`.

:func:`traced_workload` is the canonical traced run: a simulated
cluster under a Poisson workload plus retried device operations and a
closing scrub, with every layer emitting spans.  The ``metrics`` CLI
subcommand, the ``observability-demo`` experiment and the smoke test in
CI all run through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..types import SchemeName
from .metrics import MetricsRegistry
from .trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..device.cache import BufferCache
    from ..device.cluster import ReplicatedCluster
    from ..device.reliable import ReliableDevice
    from ..device.scrub import ScrubReport
    from ..net.traffic import TrafficMeter
    from ..workload.runner import WorkloadResult

__all__ = [
    "Observability",
    "observe_cluster",
    "register_traffic_meter",
    "register_device",
    "register_cache",
    "register_protocol",
    "TracedRun",
    "traced_workload",
]


@dataclass
class Observability:
    """One tracer + one registry: a run's whole instrumentation."""

    tracer: Tracer
    registry: MetricsRegistry


# -- legacy stat families as registry sources ---------------------------------

def register_traffic_meter(
    registry: MetricsRegistry,
    meter: "TrafficMeter",
    prefix: str = "traffic",
) -> None:
    """Expose a :class:`TrafficMeter` (totals, categories, per-op means)."""

    def collect():
        values = {
            "total": meter.total,
            "total_bytes": meter.total_bytes,
        }
        snapshot = meter.snapshot()
        for category, count in snapshot.by_category.items():
            values[f"category.{category.value}"] = count
        for kind in meter.operation_kinds():
            stat = meter.messages_for(kind)
            values[f"op.{kind}.count"] = stat.count
            values[f"op.{kind}.mean_messages"] = stat.mean
            values[f"op.{kind}.mean_bytes"] = meter.mean_bytes(kind)
        return values

    registry.register_source(prefix, collect)


def register_device(
    registry: MetricsRegistry,
    device: "ReliableDevice",
    prefix: str = "device",
) -> None:
    """Expose a reliable device's DeviceStats + FaultStats."""

    def collect():
        stats = device.stats
        values = {
            "reads": stats.reads,
            "writes": stats.writes,
            "failed_reads": stats.failed_reads,
            "failed_writes": stats.failed_writes,
            "batch_reads": stats.batch_reads,
            "batch_writes": stats.batch_writes,
        }
        values.update(device.fault_stats.snapshot())
        return values

    registry.register_source(prefix, collect)


def register_cache(
    registry: MetricsRegistry,
    cache: "BufferCache",
    prefix: str = "cache",
) -> None:
    """Expose a buffer cache's hit/miss counters."""

    def collect():
        stats = cache.cache_stats
        return {
            "hits": stats.hits,
            "misses": stats.misses,
            "accesses": stats.accesses,
            "hit_rate": stats.hit_rate,
        }

    registry.register_source(prefix, collect)


def register_protocol(registry, protocol, prefix: str = "protocol") -> None:
    """Expose a protocol's fault-observability counters."""

    def collect():
        return {
            "corruptions_detected": protocol.corruptions_detected,
            "blocks_healed": protocol.blocks_healed,
            "sites_fenced": protocol.sites_fenced,
            "available_sites": len(protocol.available_sites()),
        }

    registry.register_source(prefix, collect)


# -- one-call cluster wiring ---------------------------------------------------

def observe_cluster(
    cluster: "ReplicatedCluster",
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Observability:
    """Attach a tracer + registry to a :class:`ReplicatedCluster`.

    The tracer (fresh by default) is clocked by the cluster's simulator
    and installed on the network, which makes every protocol round,
    transmission and scrub pass emit spans; the registry picks up the
    traffic meter and the protocol's fault counters as sources.
    """
    if tracer is None:
        tracer = Tracer(clock=cluster.sim.now_reader())
    elif tracer.enabled:
        tracer.set_clock(cluster.sim.now_reader())
    if registry is None:
        registry = MetricsRegistry()
    cluster.network.set_tracer(tracer)
    register_traffic_meter(registry, cluster.meter)
    register_protocol(registry, cluster.protocol)
    registry.register_source(
        "cluster",
        lambda: {
            "sim_time": cluster.sim.now,
            "availability": cluster.availability(),
        },
    )
    return Observability(tracer=tracer, registry=registry)


# -- the canonical traced run --------------------------------------------------

@dataclass
class TracedRun:
    """Everything a traced workload run produced."""

    obs: Observability
    cluster: "ReplicatedCluster"
    workload: "WorkloadResult"
    scrub: Optional["ScrubReport"]
    device: "ReliableDevice"


def traced_workload(
    scheme: SchemeName = SchemeName.VOTING,
    num_sites: int = 5,
    rho: float = 0.05,
    horizon: float = 2_000.0,
    seed: int = 0,
    read_write_ratio: float = 2.5,
    op_rate: float = 1.0,
    device_ops: int = 32,
    tracer: Optional[Tracer] = None,
) -> TracedRun:
    """Run a fully observed workload: spans from every layer.

    The run has three phases: a Poisson workload against the protocol
    while sites fail and repair (protocol + net spans, workload
    metrics), a burst of retried :class:`ReliableDevice` operations
    (device spans, retry accounting), and one closing scrub pass (scrub
    spans).  Deterministic per ``seed``.
    """
    from ..device.cluster import ClusterConfig, ReplicatedCluster
    from ..device.reliable import RetryPolicy
    from ..device.scrub import scrub_replicas
    from ..errors import DeviceError, NoAvailableCopyError
    from ..workload.generator import WorkloadSpec
    from ..workload.runner import WorkloadRunner

    cluster = ReplicatedCluster(ClusterConfig(
        scheme=scheme,
        num_sites=num_sites,
        failure_rate=rho,
        repair_rate=1.0,
        seed=seed,
    ))
    obs = observe_cluster(cluster, tracer=tracer)
    runner = WorkloadRunner(
        cluster,
        WorkloadSpec(read_write_ratio=read_write_ratio, op_rate=op_rate),
        metrics=obs.registry,
    )
    workload = runner.run(horizon)

    device = cluster.device(
        retry=RetryPolicy(max_attempts=3, initial_delay=1.0),
    )
    register_device(obs.registry, device)
    payload = b"\x5a" * device.block_size
    for i in range(device_ops):
        block = i % device.num_blocks
        try:
            if i % 3 == 0:
                device.write_block(block, payload)
            else:
                device.read_block(block)
        except DeviceError:
            pass  # outcome lives in the span / failed_* counters

    try:
        scrub = scrub_replicas(cluster.protocol)
    except NoAvailableCopyError:
        scrub = None
    return TracedRun(
        obs=obs,
        cluster=cluster,
        workload=workload,
        scrub=scrub,
        device=device,
    )
