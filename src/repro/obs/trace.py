"""Structured tracing: span-style events for one operation's whole path.

The paper's evaluation is quantitative -- availability from Markov models
(Section 4) and per-operation traffic (Section 5) -- but *debugging* a
replicated device needs to see one operation travel device -> protocol ->
network (and the background scrub and chaos machinery around it).  A
:class:`Tracer` collects :class:`SpanRecord` objects from every layer:

* ``device.*``   -- :class:`~repro.device.reliable.ReliableDevice` ops,
  with retry counts and outcomes;
* ``protocol.*`` -- each scheme's read/write/batch rounds and recovery;
* ``net.*``      -- request/reply transmissions with category and bytes;
* ``scrub.*``    -- audit and repair passes;
* ``chaos.*``    -- injected faults and repairs.

Timestamps are **simulated** time when the tracer is built with a clock
(``Tracer(clock=lambda: sim.now)``); without one a logical tick counter
keeps records totally ordered.  Spans export as JSON lines
(:meth:`Tracer.export`) and are queryable in-process
(:meth:`Tracer.spans`).

Tracing defaults to *off* everywhere via the shared :data:`NULL_TRACER`,
whose span handles are single pre-allocated no-ops -- the hot paths pay
one attribute lookup and an empty context manager, nothing more (see
``benchmarks/bench_obs.py`` for the measurement).
"""

from __future__ import annotations

import json
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
)

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "validate_trace_record",
    "load_trace",
]

#: Version stamped on every exported JSON line (schema evolution guard).
TRACE_SCHEMA_VERSION = 1

#: Layers a span may belong to; the schema validator enforces membership.
LAYERS = (
    "device", "protocol", "net", "scrub", "chaos", "workload",
    "membership",
)

#: Frozenset mirror of :data:`LAYERS` for the per-span membership check
#: (hash probe instead of a linear tuple scan on the recording path).
_LAYER_SET = frozenset(LAYERS)

OUTCOME_OK = "ok"


class SpanRecord:
    """One finished (or still open) span: who, when, what happened."""

    __slots__ = (
        "span_id", "name", "layer", "start", "end", "outcome", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        layer: str,
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.layer = layer
        self.start = start
        self.end: Optional[float] = None
        self.outcome: str = ""
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Sim-time the span covered (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-lines representation (one trace line)."""
        return {
            "v": TRACE_SCHEMA_VERSION,
            "span": self.span_id,
            "name": self.name,
            "layer": self.layer,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "outcome": self.outcome or OUTCOME_OK,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, layer={self.layer!r}, "
            f"start={self.start:g}, outcome={self.outcome!r})"
        )


class Span:
    """Live handle to an open span; a context manager.

    On exit the span's end time is stamped and its outcome becomes
    ``"ok"`` or ``"error:<ExceptionType>"``; exceptions always
    propagate.  :meth:`set` attaches attributes at any point while the
    span is open.

    Handles are pooled by their tracer (like the network's
    :class:`~repro.net.message.Message` instances): ``__exit__``
    returns the handle to a freelist and a later :meth:`Tracer.span`
    re-targets it at a fresh record.  Records start life as plain
    7-slot lists (``[id, name, layer, start, attrs, end, outcome]``)
    and are materialised into :class:`SpanRecord` objects lazily on the
    first query (see :meth:`Tracer._solidify`), so the traced hot path
    allocates one small list per span instead of a full record object.
    Holders must treat a handle as valid only between ``__enter__`` and
    ``__exit__``.
    """

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: List[Any]) -> None:
        self._tracer = tracer
        self._record = record

    def _reuse(self, record: List[Any]) -> "Span":
        """Re-target this pooled handle at a fresh record."""
        self._record = record
        return self

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) span attributes."""
        self._record[4].update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        record = self._record
        tracer = self._tracer
        clock = tracer._clock
        if clock is not None:
            record[5] = float(clock())
        else:
            tracer._tick += 1
            record[5] = float(tracer._tick)
        record[6] = (
            OUTCOME_OK if exc_type is None
            else f"error:{exc_type.__name__}"
        )
        tracer._span_pool.append(self)
        return False


class _NullSpan:
    """Shared no-op span handle: the entire cost of tracing-off."""

    __slots__ = ()

    def set(self, **_attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer that records nothing (the default everywhere).

    It honours the full :class:`Tracer` interface so instrumented code
    never branches on whether tracing is on; every call is a no-op
    returning shared singletons.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def span(self, name: str, layer: str = "", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, layer: str = "", **attrs: Any) -> None:
        return None

    def spans(self, **_filters: Any) -> List[SpanRecord]:
        return []

    def clear(self) -> None:
        return None

    def export(self, stream: IO[str]) -> int:
        return 0


#: The process-wide disabled tracer; instrumented classes default to it.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans and point events from every instrumented layer.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (simulated) time.
        Omitted, a logical tick counter stands in: each :meth:`now` call
        advances it by one, keeping records totally ordered.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self._tick = 0
        self._next_id = 0
        #: Records in creation order.  The hot recording paths append
        #: cheap containers -- a 5-tuple per event, a mutable 7-slot
        #: list per span -- which :meth:`_solidify` materialises into
        #: :class:`SpanRecord` objects on the first query.  Closed
        #: records solidify in place (stable identity across queries);
        #: a still-open span stays a live list so its handle's
        #: ``__exit__`` keeps working, and queries see it through a
        #: transient view.
        self._records: List[Any] = []
        #: Freelist of exited Span handles awaiting reuse.
        self._span_pool: List[Span] = []

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        """Current trace time: the clock, or a logical tick counter."""
        if self._clock is not None:
            return float(self._clock())
        self._tick += 1
        return float(self._tick)

    def set_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Install (or with None, remove) the time source."""
        self._clock = clock

    # -- recording ----------------------------------------------------------

    def span(self, name: str, layer: str, **attrs: Any) -> Span:
        """Open a span; use as a context manager around the operation.

        The returned handle may be a pooled instance whose previous
        span has exited; the record it points at is always fresh.
        """
        if layer not in _LAYER_SET:
            raise ValueError(
                f"unknown trace layer {layer!r}; expected one of {LAYERS}"
            )
        clock = self._clock
        if clock is not None:
            start = float(clock())
        else:
            self._tick += 1
            start = float(self._tick)
        record = [self._next_id, name, layer, start, attrs, None, ""]
        self._next_id += 1
        self._records.append(record)
        pool = self._span_pool
        if pool:
            return pool.pop()._reuse(record)
        return Span(self, record)

    def event(self, name: str, layer: str, **attrs: Any) -> None:
        """Record an instantaneous event (a zero-duration ok span)."""
        if layer not in _LAYER_SET:
            raise ValueError(
                f"unknown trace layer {layer!r}; expected one of {LAYERS}"
            )
        clock = self._clock
        if clock is not None:
            start = float(clock())
        else:
            self._tick += 1
            start = float(self._tick)
        self._records.append((self._next_id, name, layer, start, attrs))
        self._next_id += 1

    # -- lazy materialisation ------------------------------------------------

    def _solidify(self) -> None:
        """Materialise closed raw records into :class:`SpanRecord`.

        Events (5-tuples) become zero-duration ok spans; closed span
        lists become finished records.  Both replace the raw container
        in place, so repeated queries return the *same* objects.  A
        still-open span list is left untouched -- its live handle must
        keep writing end/outcome into it -- and is materialised by a
        later query once closed.
        """
        records = self._records
        for i, rec in enumerate(records):
            cls = rec.__class__
            if cls is SpanRecord:
                continue
            if cls is tuple:
                span_id, name, layer, start, attrs = rec
                solid = SpanRecord(span_id, name, layer, start, attrs)
                solid.end = start
                solid.outcome = OUTCOME_OK
                records[i] = solid
            elif rec[5] is not None:
                solid = SpanRecord(rec[0], rec[1], rec[2], rec[3], rec[4])
                solid.end = rec[5]
                solid.outcome = rec[6]
                records[i] = solid

    def _materialized(self) -> List[SpanRecord]:
        """Every record as a :class:`SpanRecord`, in creation order.

        Still-open spans are returned as transient views (end ``None``,
        empty outcome), matching how open records always looked to
        queries.
        """
        self._solidify()
        out: List[SpanRecord] = []
        append = out.append
        for rec in self._records:
            if rec.__class__ is SpanRecord:
                append(rec)
            else:  # still-open span list
                append(SpanRecord(rec[0], rec[1], rec[2], rec[3], rec[4]))
        return out

    # -- in-process queries --------------------------------------------------

    def spans(
        self,
        name: Optional[str] = None,
        layer: Optional[str] = None,
        outcome: Optional[str] = None,
    ) -> List[SpanRecord]:
        """Recorded spans, optionally filtered.

        ``name`` matches exactly or as a ``"prefix."`` when it ends with
        a dot; ``outcome="ok"`` selects successes, ``outcome="error"``
        any failure.
        """
        out = []
        for record in self._materialized():
            if layer is not None and record.layer != layer:
                continue
            if name is not None:
                if name.endswith("."):
                    if not record.name.startswith(name):
                        continue
                elif record.name != name:
                    continue
            if outcome is not None:
                if outcome == "error":
                    if not record.outcome.startswith("error:"):
                        continue
                elif record.outcome != outcome:
                    continue
            out.append(record)
        return out

    def layers(self) -> Dict[str, int]:
        """Span counts per layer (a quick shape check of a trace)."""
        counts: Dict[str, int] = {}
        for record in self._records:
            layer = (
                record.layer if record.__class__ is SpanRecord
                else record[2]
            )
            counts[layer] = counts.get(layer, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop every recorded span (ids keep increasing)."""
        self._records.clear()

    # -- JSON lines ---------------------------------------------------------

    def export(self, stream: IO[str]) -> int:
        """Write every record as one JSON line; returns the line count."""
        count = 0
        for record in self._materialized():
            json.dump(record.to_dict(), stream, sort_keys=True)
            stream.write("\n")
            count += 1
        return count

    def dump(self, path: str) -> int:
        """Export to ``path``; returns the number of lines written."""
        with open(path, "w", encoding="utf-8") as handle:
            return self.export(handle)


# -- schema validation ---------------------------------------------------------

#: Required top-level keys of a trace line and their types.
_SCHEMA = {
    "v": int,
    "span": int,
    "name": str,
    "layer": str,
    "start": (int, float),
    "end": (int, float),
    "outcome": str,
    "attrs": dict,
}


def validate_trace_record(obj: Any) -> List[str]:
    """Schema-check one parsed trace line; returns the violations."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"trace line is {type(obj).__name__}, expected object"]
    for key, expected in _SCHEMA.items():
        if key not in obj:
            problems.append(f"missing key {key!r}")
        elif not isinstance(obj[key], expected):
            problems.append(
                f"key {key!r} is {type(obj[key]).__name__}"
            )
    if not problems:
        if obj["v"] != TRACE_SCHEMA_VERSION:
            problems.append(f"unknown schema version {obj['v']}")
        if obj["layer"] not in LAYERS:
            problems.append(f"unknown layer {obj['layer']!r}")
        if obj["end"] < obj["start"]:
            problems.append("end precedes start")
        if not (obj["outcome"] == OUTCOME_OK
                or obj["outcome"].startswith("error:")):
            problems.append(f"bad outcome {obj['outcome']!r}")
    return problems


def load_trace(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse and validate JSON-lines trace content.

    Raises ``ValueError`` naming the first offending line when the
    content does not conform to the schema.
    """
    records = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: not JSON ({exc})")
        problems = validate_trace_record(obj)
        if problems:
            raise ValueError(
                f"trace line {lineno}: {'; '.join(problems)}"
            )
        records.append(obj)
    return records
