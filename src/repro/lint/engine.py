"""The lint engine: walk, parse, run rules, apply suppressions.

The engine is filesystem-in, diagnostics-out: it never imports the code
it checks (a file with an import-time side effect or a missing optional
dependency lints fine), and a syntactically invalid file is itself a
finding (``parse-error``) rather than a crash.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .context import FileContext, ProjectContext
from .diagnostics import Diagnostic
from .rules import RULES, Rule
from .suppressions import SuppressionIndex

__all__ = ["LintEngine", "lint_paths", "PARSE_ERROR_CODE"]

#: Pseudo-code for files the parser rejects (always reported; a file
#: that cannot be parsed cannot be checked, so it must not pass).
PARSE_ERROR_CODE = "RL999"

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {
        "__pycache__", ".git", ".hypothesis", ".pytest_cache",
        "build", "dist", ".venv", "node_modules",
    }
)


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if not any(part in _SKIP_DIRS for part in candidate.parts):
            yield candidate


class LintEngine:
    """Run a set of rules over a tree of Python files.

    Parameters
    ----------
    rules:
        Rule instances to run; defaults to the full registry.
    """

    def __init__(self, rules: Optional[Dict[str, Rule]] = None) -> None:
        self.rules = dict(RULES) if rules is None else dict(rules)

    # -- collection ---------------------------------------------------------

    def _load(
        self, root: Optional[Path], file_path: Path
    ) -> FileContext:
        source = file_path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file_path))
        if root is None:
            # Single-file input: keep the absolute path as the relative
            # form so scoped rules still see the directory segments
            # (`sim/`, `device/`, ...) the file lives under.
            rel = file_path.resolve().as_posix().lstrip("/")
        else:
            try:
                rel = file_path.relative_to(root).as_posix()
            except ValueError:
                rel = file_path.resolve().as_posix().lstrip("/")
        return FileContext(
            path=str(file_path),
            rel=rel,
            tree=tree,
            source_lines=source.splitlines(),
        )

    def collect(
        self, paths: Sequence[str]
    ) -> "tuple[ProjectContext, List[Diagnostic]]":
        """Parse every Python file under ``paths``.

        Returns the parsed project plus one :data:`PARSE_ERROR_CODE`
        diagnostic per unparseable file.
        """
        project = ProjectContext()
        errors: List[Diagnostic] = []
        for raw in paths:
            root = Path(raw)
            base = root if root.is_dir() else None
            for file_path in _iter_python_files(root):
                try:
                    project.files.append(self._load(base, file_path))
                except SyntaxError as exc:
                    errors.append(
                        Diagnostic(
                            path=str(file_path),
                            line=exc.lineno or 1,
                            col=(exc.offset or 1),
                            code=PARSE_ERROR_CODE,
                            message=f"syntax error: {exc.msg}",
                        )
                    )
        return project, errors

    # -- checking -----------------------------------------------------------

    def run(self, paths: Sequence[str]) -> List[Diagnostic]:
        """Lint ``paths``; returns suppression-filtered diagnostics."""
        project, diagnostics = self.collect(paths)
        for ctx in project.files:
            for rule in self.rules.values():
                diagnostics.extend(rule.check_file(ctx))
        for rule in self.rules.values():
            diagnostics.extend(rule.check_project(project))
        return self._apply_suppressions(project, diagnostics)

    def _apply_suppressions(
        self,
        project: ProjectContext,
        diagnostics: List[Diagnostic],
    ) -> List[Diagnostic]:
        known = set(self.rules)
        indexes: Dict[str, SuppressionIndex] = {}
        for ctx in project.files:
            index = SuppressionIndex(ctx.path, ctx.source_lines, known)
            indexes[ctx.path] = index
            diagnostics.extend(index.unknown_code_diagnostics())
        kept = [
            diag
            for diag in diagnostics
            if diag.path not in indexes
            or not indexes[diag.path].suppresses(diag.line, diag.code)
        ]
        kept.sort(key=Diagnostic.sort_key)
        return kept


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Dict[str, Rule]] = None,
) -> List[Diagnostic]:
    """Convenience wrapper: lint ``paths`` with ``rules`` (default all)."""
    return LintEngine(rules).run(paths)
