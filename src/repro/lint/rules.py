"""The rule catalogue: determinism and protocol invariants as AST checks.

Each rule carries a stable code (``RL001``...), used in diagnostics and
in ``# repro: noqa[CODE]`` suppressions.  The rules encode properties of
*this* codebase that generic linters cannot express -- which paper claim
each one protects is spelled out in its docstring (and in DESIGN.md):

========  ==============================================================
RL001     no unseeded randomness outside ``sim/rng.py``
RL002     no wall-clock reads in simulation-deterministic packages
RL003     every ``MessageCategory`` member is priced in ``net/sizes.py``
RL004     raised exceptions derive from the ``repro.errors`` hierarchy
RL005     no float ``==``/``!=`` on sim-time or availability values
RL006     no bare/blanket-swallowed ``except`` in protocol paths
RL007     no mutable default arguments
RL008     no mutation of ``View`` membership fields outside
          ``repro.membership``
RL009     no ``Dict[SiteId, ...]`` construction in ``repro.core``
          function bodies (hot paths use the pooled ``QuorumRound``)
========  ==============================================================

Rules are registered in :data:`RULES`; adding one is defining a
``Rule`` subclass with a fresh code and decorating it ``@register``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple, Type

from .context import FileContext, ProjectContext, attribute_chain
from .diagnostics import Diagnostic

__all__ = ["Rule", "RULES", "register", "all_codes"]

#: Packages whose code runs under the simulated clock / deterministic
#: replay contract.  ``analysis`` and ``experiments`` are pure functions
#: of their inputs; ``obs`` is observer-only; ``cli`` is the edge.
_DETERMINISTIC_SEGMENTS = frozenset(
    {"sim", "core", "net", "fs", "device", "exec", "faults",
     "membership"}
)


class Rule:
    """Base class: a code, a one-line description, and check hooks."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Per-file findings (default: none)."""
        return iter(())

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        """Cross-file findings (default: none)."""
        return iter(())

    def _diag(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Add a rule class to the registry, keyed by its code."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls()
    return cls


def all_codes() -> List[str]:
    """Registered rule codes, sorted."""
    return sorted(RULES)


# ---------------------------------------------------------------------------
# RL001 -- unseeded randomness
# ---------------------------------------------------------------------------


@register
class UnseededRandomness(Rule):
    """Module-level RNG calls break seed-replayability.

    Theorem 4.1's availability estimates and every chaos verdict are
    Monte-Carlo results that must replay bit-for-bit from a seed.  All
    randomness therefore flows through
    :class:`repro.sim.rng.RandomStreams` (or an explicitly seeded
    ``random.Random``); calls into the *global* ``random`` /
    ``numpy.random`` state draw from process-lifetime state that any
    import or test-ordering change silently perturbs.
    """

    code = "RL001"
    name = "unseeded-randomness"
    description = (
        "global random.* / np.random.* call outside sim/rng.py; "
        "use RandomStreams or a seeded random.Random"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.rel.endswith("sim/rng.py"):
            return
        uses_random = ctx.imports_module("random")
        uses_numpy = ctx.imports_module("numpy")
        if not (uses_random or uses_numpy):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            if uses_random and len(chain) == 2 and chain[0] == "random":
                if chain[1] == "Random" and (node.args or node.keywords):
                    continue  # explicitly seeded instance
                yield self._diag(
                    ctx, node,
                    f"call to global random.{chain[1]}() is not "
                    "seed-replayable; draw from a RandomStreams stream "
                    "or an explicitly seeded random.Random",
                )
            elif (
                uses_numpy
                and len(chain) == 3
                and chain[0] in ("np", "numpy")
                and chain[1] == "random"
            ):
                yield self._diag(
                    ctx, node,
                    f"call to {chain[0]}.random.{chain[2]}() outside "
                    "sim/rng.py; derive generators via "
                    "repro.sim.rng.RandomStreams",
                )


# ---------------------------------------------------------------------------
# RL002 -- wall clock in simulated code
# ---------------------------------------------------------------------------

_WALL_TIME_FUNCS = frozenset(
    {
        "time", "monotonic", "perf_counter", "process_time", "sleep",
        "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
    }
)
_WALL_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


@register
class WallClock(Rule):
    """Wall-clock reads in packages that must run on simulated time.

    The simulator owns the clock (``Simulator.now``); availability is a
    *time-weighted* integral over that clock (Section 4).  A wall-clock
    read in ``sim``/``core``/``net``/``fs``/``device``/``exec``/
    ``faults`` couples results to host speed and scheduling, which both
    corrupts the figures and breaks replay.
    """

    code = "RL002"
    name = "wall-clock"
    description = (
        "wall-clock call (time.*/datetime.now) in sim-deterministic "
        "code; use the simulated clock"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not (_DETERMINISTIC_SEGMENTS & set(ctx.segments)):
            return
        uses_time = ctx.imports_module("time")
        uses_datetime = ctx.imports_module("datetime")
        if not (uses_time or uses_datetime):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            if (
                uses_time
                and len(chain) == 2
                and chain[0] == "time"
                and chain[1] in _WALL_TIME_FUNCS
            ):
                yield self._diag(
                    ctx, node,
                    f"wall-clock call time.{chain[1]}() in "
                    "simulation-deterministic code; use Simulator.now",
                )
            elif (
                uses_datetime
                and chain[-1] in _WALL_DATETIME_FUNCS
                and chain[0] == "datetime"
                and len(chain) in (2, 3)
            ):
                yield self._diag(
                    ctx, node,
                    f"wall-clock call {'.'.join(chain)}() in "
                    "simulation-deterministic code; use Simulator.now",
                )


# ---------------------------------------------------------------------------
# RL003 -- message categories priced in the size model
# ---------------------------------------------------------------------------


@register
class UnpricedMessageCategory(Rule):
    """Every ``MessageCategory`` member must appear in ``net/sizes.py``.

    Section 5's traffic comparison (Figures 7-12) is only honest while
    *every* protocol message is accounted for -- both in transmission
    counts and in the byte-level size model.  A new message category
    without a ``SizeModel.bytes_for`` entry would silently price as an
    error at runtime or, worse, be omitted from a refactored model.
    """

    code = "RL003"
    name = "unpriced-message-category"
    description = (
        "MessageCategory member missing from the net/sizes.py size model"
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        message_ctx = project.find("net/message.py")
        sizes_ctx = project.find("net/sizes.py")
        if message_ctx is None or sizes_ctx is None:
            return
        members: List[Tuple[str, ast.AST]] = []
        for node in message_ctx.tree.body:
            if (
                isinstance(node, ast.ClassDef)
                and node.name == "MessageCategory"
            ):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and not stmt.targets[0].id.startswith("_")
                    ):
                        members.append((stmt.targets[0].id, stmt))
        if not members:
            return
        referenced: Set[str] = set()
        for node in ast.walk(sizes_ctx.tree):
            chain = attribute_chain(node) if isinstance(
                node, ast.Attribute
            ) else None
            if chain and len(chain) == 2 and chain[0] == "MessageCategory":
                referenced.add(chain[1])
        for member, stmt in members:
            if member not in referenced:
                yield self._diag(
                    message_ctx, stmt,
                    f"MessageCategory.{member} has no entry in the "
                    "net/sizes.py size model; Section 5 byte accounting "
                    "would miscount it",
                )


# ---------------------------------------------------------------------------
# RL004 -- exceptions derive from repro.errors
# ---------------------------------------------------------------------------

#: Builtins accepted for argument validation and internal invariants.
#: Everything else (RuntimeError, OSError, bare Exception, ...) must be
#: a class from the ``repro.errors`` hierarchy so callers can rely on
#: ``except ReproError`` at the API boundary.
_BUILTIN_RAISE_ALLOWLIST = frozenset(
    {
        "ValueError", "TypeError", "KeyError", "IndexError",
        "NotImplementedError", "AssertionError", "StopIteration",
        "ArgumentTypeError",  # argparse custom-type contract
    }
)


@register
class ForeignException(Rule):
    """Raised exceptions must come from the ``repro.errors`` hierarchy.

    The device/protocol retry and failover paths catch ``DeviceError``
    subclasses to decide whether an operation is retryable; the chaos
    checker classifies failures by that hierarchy.  An ad-hoc
    ``RuntimeError`` escapes both, turning a modelled fault into an
    unmodelled crash.  Validation builtins (``ValueError`` & co.) are
    allowed for malformed *arguments*, which are caller bugs, not
    modelled faults.
    """

    code = "RL004"
    name = "foreign-exception"
    description = (
        "raise of an exception outside the repro.errors hierarchy "
        "(validation builtins excepted)"
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        allowed: Set[str] = set(_BUILTIN_RAISE_ALLOWLIST)
        allowed.update(project.class_names_in("errors.py"))
        # Fixpoint: local classes deriving (possibly transitively) from
        # an allowed class are allowed too.
        grown = True
        while grown:
            grown = False
            for ctx in project.files:
                for node in ast.walk(ctx.tree):
                    if not isinstance(node, ast.ClassDef):
                        continue
                    if node.name in allowed:
                        continue
                    for base in node.bases:
                        chain = attribute_chain(base)
                        if chain and chain[-1] in allowed:
                            allowed.add(node.name)
                            grown = True
                            break
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                chain = attribute_chain(exc)
                if chain is None:
                    continue
                name = chain[-1]
                # Skip rebound instances (`raise err`): only class-like
                # names (leading capital) are checked.
                if not name[:1].isupper() or name in allowed:
                    continue
                yield self._diag(
                    ctx, node,
                    f"raise of {name} outside the repro.errors "
                    "hierarchy; derive it from ReproError (or use a "
                    "validation builtin) so `except ReproError` "
                    "boundaries hold",
                )


# ---------------------------------------------------------------------------
# RL005 -- float equality on sim-time / availability
# ---------------------------------------------------------------------------

_FLOATY_EXACT = frozenset({"now", "mttf", "clock"})
_FLOATY_SUBSTRINGS = ("time", "avail")
_FLOATY_EXCLUDE_SUBSTRINGS = ("times", "timeout", "timestamp")


def _floaty_identifier(name: str) -> bool:
    lowered = name.lower()
    if lowered in _FLOATY_EXACT:
        return True
    if any(bad in lowered for bad in _FLOATY_EXCLUDE_SUBSTRINGS):
        return False
    return any(sub in lowered for sub in _FLOATY_SUBSTRINGS)


@register
class FloatEquality(Rule):
    """Exact ``==``/``!=`` on sim-time or availability values.

    Simulated times are sums of exponential draws and availabilities
    are ratios of such sums -- accumulated floating point.  Exact
    equality on them encodes an assumption about rounding that a mere
    reordering of arithmetic (e.g. the batched quorum path) breaks;
    use inequalities or ``math.isclose`` with an explicit tolerance.
    """

    code = "RL005"
    name = "float-equality"
    description = (
        "exact ==/!= comparison on a sim-time or availability value"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            for operand in [node.left, *node.comparators]:
                terminal = None
                if isinstance(operand, ast.Name):
                    terminal = operand.id
                elif isinstance(operand, ast.Attribute):
                    terminal = operand.attr
                if terminal and _floaty_identifier(terminal):
                    yield self._diag(
                        ctx, node,
                        f"exact equality on {terminal!r} (sim-time / "
                        "availability values are accumulated floats); "
                        "use an inequality or math.isclose",
                    )
                    break


# ---------------------------------------------------------------------------
# RL006 -- except breadth in protocol paths
# ---------------------------------------------------------------------------


def _handler_catches_everything(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        chain = attribute_chain(node)
        if chain and chain[-1] in ("Exception", "BaseException"):
            return True
    return False


def _body_is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or ellipsis
        return False
    return True


@register
class ExceptBreadth(Rule):
    """Bare ``except:`` anywhere; ``except Exception: pass`` everywhere.

    The fault-injection contract is that every injected fault is either
    retried, failed over, or surfaced -- the chaos checker audits the
    ledger at the end of a run.  A blanket handler that swallows
    everything also swallows ``CorruptBlockError`` and
    ``SiteDownError``, silently converting a detected fault into an
    unaccounted one (exactly what ``unaccounted_corruptions`` exists to
    catch).
    """

    code = "RL006"
    name = "except-breadth"
    description = (
        "bare except, or except Exception with a body that only passes"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self._diag(
                    ctx, node,
                    "bare except: catches SystemExit/KeyboardInterrupt "
                    "and masks fault-injection outcomes; name the "
                    "exception types",
                )
            elif _handler_catches_everything(node) and _body_is_silent(
                node.body
            ):
                yield self._diag(
                    ctx, node,
                    "except Exception with a pass body swallows "
                    "injected faults the chaos checker must see; "
                    "narrow the type or handle the error",
                )


# ---------------------------------------------------------------------------
# RL007 -- mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


@register
class MutableDefault(Rule):
    """Mutable default arguments are shared across calls.

    A default ``[]``/``{}`` is evaluated once at definition time; state
    leaking between calls is precisely the cross-run contamination the
    deterministic-replay contract forbids (two identical seeded runs in
    one process would observe each other).
    """

    code = "RL007"
    name = "mutable-default"
    description = "mutable default argument ([] / {} / set())"

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, _MUTABLE_LITERALS)
                if (
                    not bad
                    and isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                ):
                    bad = True
                if bad:
                    yield self._diag(
                        ctx, default,
                        f"mutable default argument in {node.name}(); "
                        "use None and create the value in the body",
                    )


# ---------------------------------------------------------------------------
# RL008 -- view membership fields are immutable outside repro.membership
# ---------------------------------------------------------------------------

#: The fields of :class:`repro.membership.View` that define an epoch.
_VIEW_FIELDS = frozenset({"epoch", "sites", "votes"})


@register
class ViewMutation(Rule):
    """Assignment to ``epoch``/``sites``/``votes`` attributes outside
    :mod:`repro.membership`.

    The joint-quorum safety argument treats each epoch's membership as
    a frozen fact: protocols *compare* views and thread them through
    begin/commit, and epoch fencing is keyed to exactly that sequence.
    ``View`` is a frozen dataclass, so naive mutation raises at
    runtime -- but an attribute of the same name grafted onto another
    object (or an ``object.__setattr__`` workaround rewritten as plain
    assignment) would silently bypass the view-change discipline.  All
    membership arithmetic therefore lives in ``repro.membership``;
    everywhere else these names are read-only.  Constructors may still
    initialise their *own* ``self`` fields of the same names.
    """

    code = "RL008"
    name = "view-mutation"
    description = (
        "assignment to an epoch/sites/votes attribute outside "
        "repro.membership (views are immutable value objects)"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if "membership" in ctx.segments:
            return
        ctor_nodes: Set[int] = set()
        for fn in ast.walk(ctx.tree):
            if isinstance(fn, ast.FunctionDef) and fn.name == "__init__":
                for sub in ast.walk(fn):
                    ctor_nodes.add(id(sub))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr in _VIEW_FIELDS
                ):
                    continue
                if (
                    id(node) in ctor_nodes
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                yield self._diag(
                    ctx, node,
                    f"assignment to .{target.attr} outside "
                    "repro.membership; views are immutable -- build a "
                    "successor via with_added/with_removed/with_replaced "
                    "and commit it through the MembershipManager",
                )


# ---------------------------------------------------------------------------
# RL009 -- no per-site reply dicts on protocol hot paths
# ---------------------------------------------------------------------------

def _mentions_site_keyed_dict(annotation: ast.AST) -> bool:
    """Whether an annotation contains ``Dict[SiteId, ...]`` anywhere.

    Matches ``Dict``/``dict``/``typing.Dict`` subscripts whose key type
    is the ``SiteId`` name, at any nesting depth (so the nested reply
    table in ``Dict[BlockIndex, Dict[SiteId, int]]`` is caught too).
    """
    for sub in ast.walk(annotation):
        if not isinstance(sub, ast.Subscript):
            continue
        chain = attribute_chain(sub.value)
        if chain is None or chain[-1] not in ("Dict", "dict"):
            continue
        inner = sub.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            key = inner.elts[0]
        else:
            key = inner
        if isinstance(key, ast.Name) and key.id == "SiteId":
            return True
    return False


@register
class SiteKeyedReplyDict(Rule):
    """``Dict[SiteId, ...]`` built inside a ``repro.core`` function body.

    The protocol fast path replaced per-operation reply dicts with the
    pooled, site-indexed :class:`repro.core.round.QuorumRound` (see
    DESIGN on the round pool): the steady-state loops of all three
    protocols perform no per-operation dict allocation.  A fresh
    ``Dict[SiteId, ...]`` constructed inside a ``repro/core`` function
    quietly reintroduces exactly the allocation that rewrite removed,
    so it must be a deliberate choice.  Construction in ``__init__``
    (member tables, position indexes) is setup and exempt; cold
    operational paths -- membership transitions, repair sweeps, the
    compatibility helpers kept for the slow path -- stay allowed via
    ``# repro: noqa[RL009]`` with the reason in a nearby comment.

    Detection is annotation-driven: the rule flags annotated
    assignments whose declared type mentions ``Dict[SiteId, ...]``.
    Unannotated dict builds are invisible to it -- the hot paths are
    fully annotated, and the rule is a tripwire, not a proof.
    """

    code = "RL009"
    name = "site-keyed-reply-dict"
    description = (
        "Dict[SiteId, ...] constructed inside a repro.core function; "
        "hot paths use the pooled QuorumRound reply table instead"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if "core" not in ctx.segments:
            return
        #: AnnAssign id -> name of the *innermost* enclosing function
        #: (outer functions are walked first, so later visits of the
        #: same node overwrite with the inner owner).
        owner: Dict[int, str] = {}
        for fn in ast.walk(ctx.tree):
            if isinstance(fn, ast.FunctionDef):
                for sub in ast.walk(fn):
                    if isinstance(sub, ast.AnnAssign):
                        owner[id(sub)] = fn.name
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AnnAssign):
                continue
            name = owner.get(id(node))
            if name is None or name == "__init__":
                continue
            if _mentions_site_keyed_dict(node.annotation):
                yield self._diag(
                    ctx, node,
                    "Dict[SiteId, ...] constructed on a repro.core "
                    "path; steady-state rounds use the pooled "
                    "QuorumRound reply table (core/round.py) -- hoist "
                    "the dict to setup, or suppress with "
                    "# repro: noqa[RL009] if this path is cold",
                )
