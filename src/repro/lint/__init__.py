"""Project-specific static analysis (``python -m repro lint``).

The paper's claims survive in this repository only while two families of
invariants hold: the simulator stays *deterministic* (Theorem 4.1's
availability figures are Monte-Carlo estimates that must replay
bit-for-bit) and the traffic model stays *complete* (Section 5's message
counts are only honest while every message category is priced).  Generic
linters cannot express either, so this package checks them mechanically:

* an AST-based rule engine (stdlib :mod:`ast`, no runtime dependencies)
  with a pluggable registry, per-rule codes and ``file:line`` diagnostics;
* ``# repro: noqa[CODE]`` line suppressions, with unknown codes rejected;
* project rules (``RL001``-``RL007``) that encode the determinism and
  protocol invariants -- see :mod:`repro.lint.rules` for the catalogue.

``python -m repro lint`` runs the engine over ``src`` and exits non-zero
on findings; ``make lint`` chains it with ruff and mypy.
"""

from .diagnostics import Diagnostic
from .engine import LintEngine, lint_paths
from .rules import RULES, all_codes

__all__ = [
    "Diagnostic",
    "LintEngine",
    "lint_paths",
    "RULES",
    "all_codes",
]
