"""Diagnostics emitted by the lint engine.

A :class:`Diagnostic` pins one finding to a file, line and column, named
by its rule code, so the CLI can print clickable ``file:line:col: CODE
message`` lines and tests can assert on exact locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Diagnostic"]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``path`` is the path the engine was handed (kept relative when the
    input was relative, so output is stable across machines); ``line``
    and ``col`` are 1-based, matching editors and compiler convention.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """The canonical ``file:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
