"""CLI glue for ``python -m repro lint``.

Exit codes: 0 clean, 1 findings, 2 usage error (e.g. a path that does
not exist) -- the same contract as the test and chaos commands, so CI
can chain them.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, List, Optional

from .engine import lint_paths
from .rules import RULES

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="diagnostic output format (default text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _list_rules(out: IO[str]) -> int:
    for code in sorted(RULES):
        rule = RULES[code]
        print(f"{code}  {rule.name:24s} {rule.description}", file=out)
    return 0


def run_lint(args: argparse.Namespace, out: Optional[IO[str]] = None) -> int:
    """Execute a parsed lint command; returns the exit code."""
    out = out if out is not None else sys.stdout
    if args.list_rules:
        return _list_rules(out)
    paths: List[str] = list(args.paths) if args.paths else ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2
    diagnostics = lint_paths(paths)
    if args.format == "json":
        print(
            json.dumps([d.to_json() for d in diagnostics], indent=2),
            file=out,
        )
        return 1 if diagnostics else 0
    for diag in diagnostics:
        print(diag.render(), file=out)
    if diagnostics:
        print(f"found {len(diagnostics)} problem(s)", file=out)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & protocol-invariant linter",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
