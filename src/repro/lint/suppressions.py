"""``# repro: noqa[CODE]`` line suppressions.

A diagnostic is suppressed when the physical line it points at carries a
suppression comment naming its rule code::

    started = time.perf_counter()  # repro: noqa[RL002]  wall-clock is the point

Several codes may be listed, comma-separated: ``# repro: noqa[RL002,
RL005]``.  There is deliberately no blanket ``noqa`` (a suppression must
name what it hides and ideally say why -- anything after the closing
bracket is free-form justification), and naming a code the registry does
not know is itself reported (:data:`UNKNOWN_CODE`), so typo'd
suppressions cannot silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from .diagnostics import Diagnostic

__all__ = ["UNKNOWN_CODE", "SuppressionIndex"]

#: Pseudo-code reported for a suppression naming an unregistered rule.
UNKNOWN_CODE = "RL000"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([^\]]*)\]")


def _comment_tokens(
    source_lines: Sequence[str],
) -> List[Tuple[int, int, str]]:
    """``(line, col, text)`` of every comment token in the file.

    Tokenizing (rather than regex-scanning raw lines) keeps the marker
    text inert inside docstrings and string literals -- a suppression
    must be a real comment.
    """
    text = "\n".join(source_lines) + "\n"
    comments: List[Tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append(
                    (token.start[0], token.start[1], token.string)
                )
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        # The engine only builds an index for files ast.parse accepted,
        # so this is unreachable in practice; fail open (no comments).
        return []
    return comments


class SuppressionIndex:
    """Per-file map of line number -> suppressed rule codes."""

    def __init__(
        self,
        path: str,
        source_lines: Sequence[str],
        known_codes: Iterable[str],
    ) -> None:
        self._path = path
        self._known = frozenset(known_codes)
        self._by_line: Dict[int, FrozenSet[str]] = {}
        self._bad: List[Tuple[int, int, str]] = []
        for lineno, comment_col, comment in _comment_tokens(source_lines):
            match = _NOQA_RE.search(comment)
            if match is None:
                continue
            codes = frozenset(
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            )
            col = comment_col + match.start() + 1
            if not codes:
                self._bad.append((lineno, col, "<empty>"))
                continue
            unknown = sorted(codes - self._known)
            for code in unknown:
                self._bad.append((lineno, col, code))
            self._by_line[lineno] = codes & self._known

    def suppresses(self, line: int, code: str) -> bool:
        """Whether a diagnostic of ``code`` at ``line`` is suppressed."""
        return code in self._by_line.get(line, frozenset())

    def unknown_code_diagnostics(self) -> List[Diagnostic]:
        """One :data:`UNKNOWN_CODE` finding per unrecognised code."""
        return [
            Diagnostic(
                path=self._path,
                line=line,
                col=col,
                code=UNKNOWN_CODE,
                message=(
                    f"suppression names unknown rule code {code!r}; "
                    "known codes: see `repro lint --list-rules`"
                ),
            )
            for line, col, code in self._bad
        ]
