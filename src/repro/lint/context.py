"""Parsed-file and project contexts handed to lint rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FileContext", "ProjectContext", "attribute_chain"]


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Resolve ``a.b.c`` into ``("a", "b", "c")``; None for non-names.

    Rules match on these chains (e.g. ``("time", "monotonic")`` or
    ``("np", "random", "rand")``) instead of regexes, so aliased local
    variables that merely *look* like module calls do not match.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return None


@dataclass
class FileContext:
    """One parsed source file, as the rules see it.

    ``rel`` is the path relative to the lint root in POSIX form --
    scoped rules match on its segments (``"sim" in ctx.segments``), so
    the same rules apply to the real tree under ``src/repro`` and to
    the synthetic fixture trees the test suite feeds the engine.
    """

    path: str
    rel: str
    tree: ast.Module
    source_lines: Sequence[str]

    @property
    def segments(self) -> Tuple[str, ...]:
        return tuple(self.rel.split("/"))

    def imports_module(self, module: str) -> bool:
        """Whether the file imports ``module`` at any level."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == module:
                        return True
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == module:
                    return True
        return False


@dataclass
class ProjectContext:
    """Every parsed file of one lint run, for cross-file rules."""

    files: List[FileContext] = field(default_factory=list)

    def find(self, suffix: str) -> Optional[FileContext]:
        """The unique file whose relative path ends with ``suffix``.

        A file whose *basename* terminates the suffix also matches
        (``message.py`` for ``net/message.py``), so cross-file rules
        keep working when the lint root sits inside the package.
        """
        matches = [
            f
            for f in self.files
            if f.rel.endswith(suffix) or suffix.endswith("/" + f.rel)
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            return None
        # Prefer the shortest path (the canonical tree location) when a
        # fixture tree nests another copy.
        return min(matches, key=lambda f: len(f.rel))

    def class_names_in(self, suffix: str) -> Dict[str, ast.ClassDef]:
        """Module-level class definitions of the file ending ``suffix``."""
        ctx = self.find(suffix)
        if ctx is None:
            return {}
        return {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, ast.ClassDef)
        }
