"""Deterministic seed derivation for parallel Monte-Carlo sweeps.

A sweep fans out many *tasks* -- episodes of a Monte-Carlo estimate,
cells of an experiment grid -- and each stochastic task needs its own
seed.  Deriving those seeds incrementally (``seed + i``, or worse, from
a shared generator consumed in submission order) couples the results to
the scheduling order and the worker count.  Instead, every task seed
here is a pure function of ``(namespace, base_seed, task_index)``:

* the same sweep produces the same seeds whether it runs serially, on
  2 workers or on 32, and whatever order tasks complete in;
* two sweeps with different namespaces (e.g. different grid cells)
  draw from statistically independent streams even under one base seed;
* adding tasks to the end of a sweep never perturbs earlier tasks.

This mirrors :class:`repro.sim.rng.RandomStreams`, which derives named
simulation streams the same way (BLAKE2b, because Python's builtin
``hash`` is salted per process); :func:`derive_seed` is the task-indexed
analogue of ``RandomStreams.spawn``.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed", "namespace_seed"]

#: Seeds are 64-bit so they feed ``numpy.random.SeedSequence`` and
#: ``random.Random`` alike without truncation surprises.
_SEED_BITS = 64


def _digest(text: str) -> int:
    raw = hashlib.blake2b(
        text.encode("utf-8"), digest_size=_SEED_BITS // 8
    ).digest()
    return int.from_bytes(raw, "big")


def derive_seed(base_seed: int, index: int, namespace: str = "task") -> int:
    """The seed of task ``index`` in the sweep ``(namespace, base_seed)``.

    Pure and stable across processes, platforms and Python versions:
    only the three arguments matter, never scheduling.

    >>> derive_seed(7, 0) != derive_seed(7, 1)
    True
    >>> derive_seed(7, 3) == derive_seed(7, 3)
    True
    """
    if index < 0:
        raise ValueError(f"task index must be non-negative, got {index}")
    return _digest(f"{namespace}:{int(base_seed)}:{int(index)}")


def namespace_seed(base_seed: int, name: str) -> int:
    """A sub-sweep base seed derived from a parent seed and a name.

    Use this to give each cell of a grid its own independent episode
    stream: ``namespace_seed(seed, f"mttf:{scheme}:{n}:{rho}")``.
    Distinct names yield independent streams under one master seed.
    """
    return _digest(f"ns:{name}:{int(base_seed)}")
