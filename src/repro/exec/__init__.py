"""Parallel execution engine for sweeps (``repro.exec``).

The paper's evaluation is a grid of per-(scheme, n, rho) points, each
backed by Monte-Carlo episodes -- embarrassingly parallel work.  This
package fans it out:

* :class:`ParallelRunner` -- maps a pure worker over task specs, either
  in-process (default) or across a ``ProcessPoolExecutor``, with
  chunking, bounded in-flight submissions and per-task timing;
* :func:`derive_seed` / :func:`namespace_seed` -- deterministic seed
  derivation keyed on ``(namespace, base_seed, task_index)``, so
  parallel and serial runs produce bit-identical aggregates.
"""

from .runner import ParallelRunner, RunnerStats, Task, resolve_jobs
from .seeding import derive_seed, namespace_seed

__all__ = [
    "ParallelRunner",
    "RunnerStats",
    "Task",
    "resolve_jobs",
    "derive_seed",
    "namespace_seed",
]
