"""A parallel execution engine for Monte-Carlo sweeps and grid cells.

:class:`ParallelRunner` maps a *worker* over a list of pure task specs.
Two backends share one contract:

* **serial** (the default) runs every task in the calling process, in
  index order -- fully importable, debuggable, no pickling constraints;
* **process** fans tasks out across a ``ProcessPoolExecutor`` in
  index-contiguous chunks with a bounded number of in-flight
  submissions, then reassembles the results *by task index*.

Because every task's seed is a pure function of ``(namespace,
base_seed, index)`` (:mod:`repro.exec.seeding`) and results are
reassembled in index order, the two backends produce **bit-identical
aggregates** for any worker count and any completion order.  The
property suite in ``tests/exec`` pins this down.

The process backend degrades gracefully: if the pool cannot be built or
the worker cannot cross a process boundary (closures, lambdas,
interactively defined functions), the runner falls back to the serial
backend and records the fallback, rather than failing the sweep.

Per-task wall-clock timings feed an optional
:class:`~repro.obs.metrics.MetricsRegistry` (``exec.tasks``,
``exec.chunks``, ``exec.fallbacks`` counters and an
``exec.task_seconds`` histogram, labelled by runner name and backend).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from .seeding import derive_seed

__all__ = ["Task", "RunnerStats", "ParallelRunner", "WALL_BUCKETS"]

#: Wall-clock histogram buckets (seconds).  Episode workers run in the
#: millisecond range; whole-experiment cells can take tens of seconds.
WALL_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

#: Failures of the *pool machinery* (not of the worker's own logic)
#: that trigger the serial fallback.
_POOL_FAILURES = (
    BrokenProcessPool,
    pickle.PicklingError,
    AttributeError,  # pickling a non-module-level callable
    PermissionError,  # sandboxes without process/semaphore support
)


@dataclass(frozen=True)
class Task:
    """One unit of a sweep: an index, a derived seed, and a payload.

    Workers must be pure functions of the task: same task, same result,
    no shared mutable state.  That is what makes the backends
    interchangeable.
    """

    index: int
    seed: int
    payload: Any


@dataclass
class RunnerStats:
    """Accounting of the most recent :meth:`ParallelRunner.run_tasks`."""

    backend: str = "serial"
    tasks: int = 0
    chunks: int = 0
    fallbacks: int = 0
    wall_seconds: float = 0.0
    task_seconds: List[float] = field(default_factory=list)


# A finished task travels home as (index, result, elapsed_seconds).
_Record = Tuple[int, Any, float]


def _run_chunk(worker: Callable[[Task], Any],
               tasks: Sequence[Task]) -> List[_Record]:
    """Execute a chunk of tasks in-process, timing each one.

    Module-level so the process backend can ship it to workers.
    """
    records: List[_Record] = []
    for task in tasks:
        # Wall clock is deliberate here: these timings feed the
        # exec.task_seconds *observability* histogram and never any
        # simulation result, which depends only on (namespace, seed,
        # index).
        start = time.perf_counter()  # repro: noqa[RL002]  host-side metric
        result = worker(task)
        elapsed = time.perf_counter() - start  # repro: noqa[RL002]  host-side metric
        records.append((task.index, result, elapsed))
    return records


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: None/1 serial, 0 = all cores."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ExecutionError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class ParallelRunner:
    """Map pure workers over task lists, serially or across processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` or ``1`` selects the serial
        backend; ``0`` means one per CPU; ``N > 1`` uses a process
        pool of ``N`` workers.
    chunk_size:
        Tasks per pool submission.  Defaults to roughly four chunks
        per worker, so stragglers rebalance without drowning the pool
        in per-task IPC.
    max_inflight:
        Bound on simultaneously submitted chunks (default ``2 *
        jobs``), so a million-task sweep never materialises a million
        futures.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; per-task
        timings and counters are recorded under ``exec.*``.
    name:
        Label for metrics (``runner=<name>``).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        chunk_size: Optional[int] = None,
        max_inflight: Optional[int] = None,
        metrics: Optional[Any] = None,
        name: str = "exec",
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if chunk_size is not None and chunk_size < 1:
            raise ExecutionError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ExecutionError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.chunk_size = chunk_size
        self.max_inflight = max_inflight
        self.metrics = metrics
        self.name = name
        self.stats = RunnerStats()

    # -- task construction --------------------------------------------------

    def make_tasks(
        self,
        payloads: Sequence[Any],
        base_seed: int = 0,
        namespace: str = "task",
    ) -> List[Task]:
        """Attach indices and derived seeds to a payload list."""
        return [
            Task(index=i, seed=derive_seed(base_seed, i, namespace),
                 payload=payload)
            for i, payload in enumerate(payloads)
        ]

    # -- execution ----------------------------------------------------------

    def map(
        self,
        worker: Callable[[Task], Any],
        payloads: Sequence[Any],
        base_seed: int = 0,
        namespace: str = "task",
    ) -> List[Any]:
        """Run ``worker`` over each payload; results in payload order."""
        return self.run_tasks(
            worker, self.make_tasks(payloads, base_seed, namespace)
        )

    def run_tasks(
        self,
        worker: Callable[[Task], Any],
        tasks: Sequence[Task],
    ) -> List[Any]:
        """Execute prepared tasks; results ordered by task index.

        The input order of ``tasks`` is irrelevant: each task carries
        its own index and seed, and the output is sorted by index, so
        shuffled submission produces bit-identical results.
        """
        started = time.perf_counter()  # repro: noqa[RL002]  host-side metric
        stats = RunnerStats(tasks=len(tasks))
        if self.jobs <= 1 or len(tasks) <= 1:
            stats.backend = "serial"
            stats.chunks = 1 if tasks else 0
            records = _run_chunk(worker, tasks)
        else:
            try:
                records = self._run_pool(worker, list(tasks), stats)
                stats.backend = "process"
            except _POOL_FAILURES:
                stats.backend = "serial"
                stats.fallbacks = 1
                stats.chunks = 1
                records = _run_chunk(worker, tasks)
        records.sort(key=lambda record: record[0])
        stats.task_seconds = [elapsed for _, _, elapsed in records]
        stats.wall_seconds = time.perf_counter() - started  # repro: noqa[RL002]  host-side metric
        self.stats = stats
        self._record_metrics(stats)
        return [result for _, result, _ in records]

    def _run_pool(
        self,
        worker: Callable[[Task], Any],
        tasks: List[Task],
        stats: RunnerStats,
    ) -> List[_Record]:
        chunk_size = self.chunk_size or max(
            1, -(-len(tasks) // (self.jobs * 4))
        )
        chunks = [
            tasks[i:i + chunk_size]
            for i in range(0, len(tasks), chunk_size)
        ]
        stats.chunks = len(chunks)
        max_inflight = self.max_inflight or 2 * self.jobs
        records: List[_Record] = []
        workers = min(self.jobs, len(chunks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = set()
            queue = iter(chunks)
            for chunk in queue:
                pending.add(pool.submit(_run_chunk, worker, chunk))
                if len(pending) >= max_inflight:
                    break
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    records.extend(future.result())
                for chunk in queue:
                    pending.add(pool.submit(_run_chunk, worker, chunk))
                    if len(pending) >= max_inflight:
                        break
        return records

    # -- observability ------------------------------------------------------

    def _record_metrics(self, stats: RunnerStats) -> None:
        if self.metrics is None:
            return
        labels = dict(runner=self.name, backend=stats.backend)
        self.metrics.counter("exec.tasks", **labels).inc(stats.tasks)
        self.metrics.counter("exec.chunks", **labels).inc(stats.chunks)
        if stats.fallbacks:
            self.metrics.counter(
                "exec.fallbacks", runner=self.name
            ).inc(stats.fallbacks)
        histogram = self.metrics.histogram(
            "exec.task_seconds", buckets=WALL_BUCKETS, **labels
        )
        for elapsed in stats.task_seconds:
            histogram.observe(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelRunner(jobs={self.jobs}, "
            f"backend={'process' if self.jobs > 1 else 'serial'})"
        )
